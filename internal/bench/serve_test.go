package bench

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/wal"
)

// TestServe runs the serving benchmark at test scale and checks the
// acceptance envelope: the plan cache must serve ≥ 90% of the Zipf replay
// and make the repeated-query path ≥ 5x faster than cold compilation.
func TestServe(t *testing.T) {
	cfg := DefaultServeConfig()
	cfg.Scale = 0.03
	cfg.Ops = 2000
	res, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d serving errors", res.Errors)
	}
	if res.Ops == 0 || res.QPS <= 0 {
		t.Fatalf("no throughput measured: %+v", res)
	}
	if res.Mutations == 0 {
		t.Error("writers applied no mutations; the benchmark is not exercising churn")
	}
	if res.HitRate < 0.9 {
		t.Errorf("plan-cache hit rate %.1f%% < 90%%", 100*res.HitRate)
	}
	if res.Speedup < 5 {
		t.Errorf("cached path speedup %.1fx < 5x (cold %v, hot %v)",
			res.Speedup, res.ColdLatency, res.HotLatency)
	}

	var sb strings.Builder
	res.Format(&sb)
	out := sb.String()
	for _, want := range []string{"hit-rate", "speedup", "queries/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestServeHTTPTransport replays the same benchmark through the network
// front end over loopback: every query is shipped as rule text, every
// mutation as a JSON batch, and the cache must keep serving across the
// wire exactly as it does in-process.
func TestServeHTTPTransport(t *testing.T) {
	cfg := DefaultServeConfig()
	cfg.Transport = TransportHTTP
	cfg.Scale = 0.03
	cfg.Ops = 800
	cfg.Clients = 4
	cfg.Writers = 1
	cfg.PoolSize = 16
	cfg.LatencyProbes = 5
	res, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d serving errors over HTTP", res.Errors)
	}
	if res.Transport != TransportHTTP {
		t.Fatalf("want transport %q in the result, got %q", TransportHTTP, res.Transport)
	}
	if res.Ops == 0 || res.QPS <= 0 {
		t.Fatalf("no throughput measured: %+v", res)
	}
	if res.Mutations == 0 {
		t.Error("writers applied no mutations over HTTP")
	}
	if res.HitRate < 0.9 {
		t.Errorf("plan-cache hit rate %.1f%% < 90%% over HTTP", 100*res.HitRate)
	}
	if res.MeanLatency <= 0 {
		t.Error("mean latency not measured")
	}
	var sb strings.Builder
	res.Format(&sb)
	if !strings.Contains(sb.String(), "transport: http") {
		t.Errorf("report missing transport line:\n%s", sb.String())
	}
}

// TestServeFollowerTransport replays reads against follower replicas
// with the MinLSN fence while writes go to the durable primary: the
// differential contract (every fenced read observes every acknowledged
// write) is enforced by the fence itself — a violation would surface as
// a 504 or a wrong answer, both counted as errors.
func TestServeFollowerTransport(t *testing.T) {
	for _, followers := range []int{0, 2} {
		cfg := DefaultServeConfig()
		cfg.Transport = TransportFollower
		cfg.Followers = followers
		cfg.Durable = core.DurableConfig{Dir: t.TempDir(), CheckpointEvery: -1}
		cfg.Scale = 0.03
		cfg.Ops = 400
		cfg.Clients = 4
		cfg.Writers = 1
		cfg.WriteMix = 0.1
		cfg.PoolSize = 12
		cfg.LatencyProbes = 0
		res, err := Serve(cfg)
		if err != nil {
			t.Fatalf("followers=%d: %v", followers, err)
		}
		if res.Errors != 0 {
			t.Fatalf("followers=%d: %d serving errors", followers, res.Errors)
		}
		if res.Ops == 0 || res.QPS <= 0 {
			t.Fatalf("followers=%d: no throughput measured: %+v", followers, res)
		}
		if res.Followers != followers {
			t.Fatalf("want %d followers in the result, got %d", followers, res.Followers)
		}
		if res.WriteOps == 0 {
			t.Errorf("followers=%d: no write ops in the client mix", followers)
		}
		var sb strings.Builder
		res.Format(&sb)
		if !strings.Contains(sb.String(), "followers\t") {
			t.Errorf("report missing followers line:\n%s", sb.String())
		}
	}
}

// TestServeRejectsBadConfig pins the validation errors: these used to
// panic (nil Zipf for s <= 1, division by zero for Clients = 0).
func TestServeRejectsBadConfig(t *testing.T) {
	bad := []func(*ServeConfig){
		func(c *ServeConfig) { c.ZipfS = 1.0 },
		func(c *ServeConfig) { c.ZipfS = 0 },
		func(c *ServeConfig) { c.Clients = 0 },
		func(c *ServeConfig) { c.Writers = -1 },
		func(c *ServeConfig) { c.Ops = 1; c.Clients = 8 },
		func(c *ServeConfig) { c.Dataset = "nosuch" },
		func(c *ServeConfig) { c.Transport = "smoke-signals" },
		func(c *ServeConfig) { c.WriteMix = 1 },
		func(c *ServeConfig) { c.WriteMix = -0.2 },
		func(c *ServeConfig) { c.ResidueMix = 1 },
		func(c *ServeConfig) { c.ResidueMix = -0.2 },
		func(c *ServeConfig) { c.ResidueMix = 0.3 }, // needs a sharded layer
		func(c *ServeConfig) { c.Followers = -1 },
		func(c *ServeConfig) { c.Followers = 2 },                 // needs the follower transport
		func(c *ServeConfig) { c.Transport = TransportFollower }, // needs Durable.Dir
		func(c *ServeConfig) {
			c.Transport = TransportFollower
			c.Durable.Dir = "unused"
			c.Shards = 2 // follower transport is unsharded
		},
	}
	for i, mutate := range bad {
		cfg := DefaultServeConfig()
		mutate(&cfg)
		if _, err := Serve(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// TestServeAllDatasets smoke-tests the three workloads at minimal scale.
func TestServeAllDatasets(t *testing.T) {
	for _, name := range []string{"AIRCA", "TFACC", "MCBM"} {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := DefaultServeConfig()
			cfg.Dataset = name
			cfg.Scale = 0.02
			cfg.Ops = 400
			cfg.Clients = 4
			cfg.Writers = 1
			cfg.PoolSize = 12
			cfg.LatencyProbes = 5
			res, err := Serve(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Errors != 0 {
				t.Fatalf("%d serving errors", res.Errors)
			}
			if res.Cache.Hits == 0 {
				t.Error("no cache hits at all")
			}
		})
	}
}

// TestServeShardedTransport replays the benchmark through the
// scatter/gather router: the replay must complete error-free at the same
// cache effectiveness as the single engine, exercise every routing
// strategy, and keep the hit rate within a point of the unsharded run.
func TestServeShardedTransport(t *testing.T) {
	base := DefaultServeConfig()
	base.Scale = 0.03
	base.Ops = 2000
	single, err := Serve(base)
	if err != nil {
		t.Fatal(err)
	}

	cfg := base
	cfg.Transport = TransportSharded
	cfg.Shards = 4
	res, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d serving errors", res.Errors)
	}
	if res.Shards != 4 {
		t.Errorf("result reports %d shards, want 4", res.Shards)
	}
	if res.Routes.Single == 0 {
		t.Error("no queries took the single-shard fast path")
	}
	if res.Routes.Single+res.Routes.Scattered+res.Routes.Residue != int64(res.Ops) {
		t.Errorf("routing decisions %+v do not add up to %d ops", res.Routes, res.Ops)
	}
	if res.Mutations == 0 {
		t.Error("writers applied no mutations through the router")
	}
	if res.HitRate < single.HitRate-0.01 {
		t.Errorf("sharded hit rate %.2f%% more than a point below single-engine %.2f%%",
			100*res.HitRate, 100*single.HitRate)
	}

	var sb strings.Builder
	res.Format(&sb)
	if !strings.Contains(sb.String(), "shards\t4") {
		t.Errorf("report missing shard line:\n%s", sb.String())
	}
}

// TestServeReshardMidReplay prices a live 2→4 migration under the Zipf
// replay: the run must stay error-free, the reshard must complete and be
// reported, and the result must carry the host parallelism line that
// contextualizes sharded QPS numbers.
func TestServeReshardMidReplay(t *testing.T) {
	cfg := DefaultServeConfig()
	cfg.Transport = TransportSharded
	cfg.Shards = 2
	cfg.ReshardTo = 4
	cfg.Scale = 0.03
	cfg.Ops = 2000
	cfg.LatencyProbes = 5
	res, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d serving errors during live reshard", res.Errors)
	}
	if res.Reshard == nil {
		t.Fatal("mid-replay reshard did not report")
	}
	if res.Reshard.From != 2 || res.Reshard.To != 4 || res.Reshard.Epoch != 2 {
		t.Errorf("reshard report: %+v", res.Reshard)
	}
	if res.Reshard.Moved == 0 || res.Reshard.Seeded == 0 {
		t.Errorf("reshard moved=%d seeded=%d, want both > 0", res.Reshard.Moved, res.Reshard.Seeded)
	}
	if res.Procs < 1 || res.CPUs < 1 {
		t.Errorf("host parallelism not recorded: GOMAXPROCS=%d CPUs=%d", res.Procs, res.CPUs)
	}

	var sb strings.Builder
	res.Format(&sb)
	out := sb.String()
	for _, want := range []string{"GOMAXPROCS=", "reshard\t2→4 mid-replay"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// ReshardTo without a sharded layer must be rejected up front.
	bad := DefaultServeConfig()
	bad.ReshardTo = 4
	if _, err := Serve(bad); err == nil {
		t.Error("ReshardTo on an unsharded config was accepted")
	}
}

// TestServeWriteMixSharded prices the write-heavy mix against the
// sharded layer: client write ops flow through the router's synchronous
// owner/anchor commit plus the batched broadcast apply queue, the run
// stays error-free, and the result carries the apply-queue accounting
// that shows non-anchor lock acquisitions are O(batches), not O(writes).
func TestServeWriteMixSharded(t *testing.T) {
	cfg := DefaultServeConfig()
	cfg.Scale = 0.03
	cfg.Ops = 2000
	cfg.Transport = TransportSharded
	cfg.Shards = 2
	cfg.WriteMix = 0.4
	res, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d serving errors under the write mix", res.Errors)
	}
	if res.WriteOps == 0 {
		t.Fatal("WriteMix 0.4 produced no client write ops")
	}
	queries := int64(res.Ops) - res.WriteOps
	if got := res.Routes.Single + res.Routes.Double + res.Routes.Scattered + res.Routes.Residue; got != queries {
		t.Errorf("routing decisions %+v sum to %d, want the %d query ops", res.Routes, got, queries)
	}
	if res.Apply.Enqueued == 0 {
		t.Fatal("no broadcast writes were enqueued")
	}
	if res.Apply.Errors != 0 {
		t.Errorf("apply queue recorded %d store errors", res.Apply.Errors)
	}
	if res.Apply.Batches <= 0 || res.Apply.Batches > res.Apply.Enqueued {
		t.Errorf("implausible batching: %+v", res.Apply)
	}
	var sb strings.Builder
	res.Format(&sb)
	if !strings.Contains(sb.String(), "apply queue") {
		t.Errorf("report missing the apply-queue line:\n%s", sb.String())
	}
}

// TestServeResidueMixSharded prices the non-distributable mix: a slice
// of client queries is drawn from a residue-routed pool (cross-key
// joins, differences over partitioned operands), the run stays
// error-free, and the result carries the residue accounting — ops, QPS,
// and the executor's semi-join/shuffle counters.
func TestServeResidueMixSharded(t *testing.T) {
	cfg := DefaultServeConfig()
	cfg.Scale = 0.03
	cfg.Ops = 1500
	cfg.Transport = TransportSharded
	cfg.Shards = 2
	cfg.ResidueMix = 0.3
	res, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d serving errors under the residue mix", res.Errors)
	}
	if res.ResidueOps == 0 {
		t.Fatal("ResidueMix 0.3 produced no residue query ops")
	}
	if res.ResidueQPS <= 0 {
		t.Errorf("residue ops recorded but QPS %.2f not computed", res.ResidueQPS)
	}
	if res.Routes.Residue < res.ResidueOps {
		t.Errorf("router counted %d residue routes for %d residue client ops",
			res.Routes.Residue, res.ResidueOps)
	}
	if res.Residue.BroadcastRels == 0 {
		t.Error("residue stats report no broadcast relations on AIRCA")
	}
	var sb strings.Builder
	res.Format(&sb)
	if !strings.Contains(sb.String(), "residue") {
		t.Errorf("report missing the residue line:\n%s", sb.String())
	}
}

// TestServeDurable replays a write-heavy mix against a write-ahead-logged
// serving layer, single-engine then sharded, and checks the report carries
// the durability rows that price the logging policy.
func TestServeDurable(t *testing.T) {
	base := DefaultServeConfig()
	base.Scale = 0.03
	base.Ops = 1200
	base.Clients = 4
	base.Writers = 1
	base.PoolSize = 16
	base.LatencyProbes = 5
	base.WriteMix = 0.3

	for _, tc := range []struct {
		name      string
		transport string
		shards    int
		fsync     wal.Policy
	}{
		{name: "engine", transport: TransportEngine, fsync: wal.SyncOff},
		{name: "sharded", transport: TransportSharded, shards: 2, fsync: wal.SyncInterval},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			cfg.Transport = tc.transport
			cfg.Shards = tc.shards
			cfg.Durable = core.DurableConfig{
				Dir:             t.TempDir(),
				CheckpointEvery: -1,
				WAL:             wal.Options{Fsync: tc.fsync},
			}
			res, err := Serve(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Errors != 0 {
				t.Fatalf("%d serving errors on the durable layer", res.Errors)
			}
			if res.WriteOps == 0 {
				t.Fatal("WriteMix produced no client write ops")
			}
			if res.Durability == nil {
				t.Fatal("durable run reports no Durability stats")
			}
			if res.Durability.Appends < 2*res.WriteOps {
				t.Errorf("only %d wal appends for %d delete+reinsert write ops",
					res.Durability.Appends, res.WriteOps)
			}
			if res.Durability.LastLSN == 0 || res.Durability.Segments == 0 {
				t.Errorf("implausible log state: %+v", res.Durability)
			}
			var sb strings.Builder
			res.Format(&sb)
			if !strings.Contains(sb.String(), "durability\tfsync="+tc.fsync.String()) {
				t.Errorf("report missing the durability row:\n%s", sb.String())
			}

			// Reusing the directory must refuse: the benchmark would
			// otherwise price recovery replay as serving.
			if _, err := Serve(cfg); err == nil {
				t.Error("Serve accepted a directory that already holds log state")
			}
		})
	}
}

// TestServeIVM pins the materialized-answer accounting: a default run
// under a write mix must admit hot fingerprints, serve repeats from the
// maintained answer, fold the writes through the delta rules, and report
// all of it; an -ivm=false run must report the plan-cache-only baseline
// with zeroed counters.
func TestServeIVM(t *testing.T) {
	cfg := DefaultServeConfig()
	cfg.Scale = 0.03
	cfg.Ops = 2000
	cfg.WriteMix = 0.2
	res, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d serving errors", res.Errors)
	}
	if !res.IVMOn {
		t.Fatal("default run reports IVM off")
	}
	if res.IVM.Admitted == 0 {
		t.Error("Zipf-hot fingerprints under a write mix never crossed admission")
	}
	if res.IVM.Hits == 0 {
		t.Error("no repeats were served from a maintained answer")
	}
	if res.IVM.DeltaApplies == 0 {
		t.Error("client writes never reached the delta rules")
	}
	var sb strings.Builder
	res.Format(&sb)
	if !strings.Contains(sb.String(), "ivm\t") || !strings.Contains(sb.String(), "O(answer)") {
		t.Errorf("report missing the ivm row:\n%s", sb.String())
	}

	off := cfg
	off.IVMOff = true
	baseline, err := Serve(off)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Errors != 0 {
		t.Fatalf("%d serving errors with IVM off", baseline.Errors)
	}
	if baseline.IVMOn {
		t.Fatal("IVMOff run reports IVM on")
	}
	if baseline.IVM.Admitted != 0 || baseline.IVM.Hits != 0 {
		t.Errorf("IVMOff run still materialized: %+v", baseline.IVM)
	}
	sb.Reset()
	baseline.Format(&sb)
	if !strings.Contains(sb.String(), "ivm\toff") {
		t.Errorf("baseline report missing the ivm off row:\n%s", sb.String())
	}
}

// TestServeInMemoryReportsNoDurability pins the default: without a log
// directory the result carries no durability block.
func TestServeInMemoryReportsNoDurability(t *testing.T) {
	cfg := DefaultServeConfig()
	cfg.Scale = 0.02
	cfg.Ops = 200
	cfg.Clients = 2
	cfg.Writers = 1
	cfg.PoolSize = 8
	cfg.LatencyProbes = 2
	res, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Durability != nil {
		t.Fatalf("in-memory run reports durability stats: %+v", res.Durability)
	}
}

// Package bench is the experiment harness of Section 8: it regenerates
// every figure and table of the paper's evaluation — Fig. 6 (percentage of
// covered / boundedly evaluable queries vs ‖A‖), Fig. 5(a–l) (evalQP vs
// evalQP⁻ vs evalDBMS across |D|, #-sel, #-join and ‖A‖, with P(D_Q)),
// Exp-1(IV) (index size and build time) and Exp-2 (latency of ChkCov,
// QPlan, minA, minADAG, minAE). cmd/benchfig prints the series; the root
// bench_test.go wraps them as testing.B benchmarks.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/access"
	"repro/internal/cover"
	"repro/internal/exec"
	"repro/internal/minimize"
	"repro/internal/plan"
	"repro/internal/ra"
	"repro/internal/rewrite"
	"repro/internal/store"
	"repro/internal/value"
	"repro/internal/workload"
)

// Config tunes experiment cost. Defaults keep a full run in minutes.
type Config struct {
	// QueryPool is the number of random queries per dataset (paper: 100).
	QueryPool int
	// EvalQueries is how many covered queries each Fig. 5 point averages
	// over (paper: 5).
	EvalQueries int
	// FullScale is the scale factor treated as "full size".
	FullScale float64
	// Seed fixes the workload RNG.
	Seed int64
	// BaselineCap skips evalDBMS above this |D| (it only gets slower —
	// mirroring the paper's evalDBMS timeouts); 0 = never skip.
	BaselineCap int64
}

// DefaultConfig mirrors the paper's shape at laptop scale.
func DefaultConfig() Config {
	return Config{QueryPool: 100, EvalQueries: 5, FullScale: 1.0, Seed: 2016}
}

// queryPool generates the paper's random workload: 100 queries with #-sel
// ∈ [4,9], #-join ∈ [0,5], #-unidiff ∈ [0,5].
func queryPool(d *workload.Dataset, cfg Config) ([]ra.Query, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]ra.Query, 0, cfg.QueryPool)
	p := workload.DefaultQueryParams()
	for i := 0; i < cfg.QueryPool; i++ {
		p.Sel = 4 + rng.Intn(6)
		p.Join = rng.Intn(6)
		p.UniDiff = rng.Intn(6)
		q, err := d.RandomQuery(p, rng)
		if err != nil {
			return nil, err
		}
		out = append(out, q)
	}
	return out, nil
}

// coveredQueries filters the pool to queries covered by A, up to limit.
// Degenerate queries (a sub-query with conflicting constants is provably
// empty and evaluates without any data access) are excluded so the
// measurements reflect real work, as the paper's hand-picked queries do.
func coveredQueries(d *workload.Dataset, pool []ra.Query, A *access.Schema, limit int) ([]*cover.Result, error) {
	var out []*cover.Result
	for _, q := range pool {
		res, err := cover.Check(q, d.Schema, A)
		if err != nil {
			return nil, err
		}
		if !res.Covered {
			continue
		}
		degenerate := false
		for _, sub := range res.Subs {
			if sub.Classes.Conflict {
				degenerate = true
				break
			}
		}
		if degenerate {
			continue
		}
		out = append(out, res)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out, nil
}

// Fig6 reproduces Figure 6: for each dataset and each fraction of the
// access schema, the percentage of covered queries and of boundedly
// evaluable queries. The paper determined bounded evaluability by manual
// examination; here a query counts as bounded when it is covered or our
// rewriter finds a covered A-equivalent — a mechanical lower bound.
func Fig6(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "# Figure 6: fraction of covered / bounded queries vs % of access constraints")
	fmt.Fprintln(w, "dataset\tfracA\tcovered%\tbounded%")
	fractions := []float64{0, 0.25, 0.5, 0.75, 1.0}
	for _, d := range workload.All() {
		pool, err := queryPool(d, cfg)
		if err != nil {
			return err
		}
		for _, f := range fractions {
			A := d.AccessFraction(f)
			covered, bounded := 0, 0
			for _, q := range pool {
				res, err := cover.Check(q, d.Schema, A)
				if err != nil {
					return err
				}
				if res.Covered {
					covered++
					bounded++
					continue
				}
				rw, err := rewrite.ToCovered(q, d.Schema, A)
				if err == nil && rw.Covered {
					bounded++
				}
			}
			fmt.Fprintf(w, "%s\t%.2f\t%.1f\t%.1f\n", d.Name, f,
				100*float64(covered)/float64(len(pool)),
				100*float64(bounded)/float64(len(pool)))
		}
	}
	return nil
}

// evalPoint runs one Fig. 5 measurement: average evalQP / evalQP⁻ times
// and access ratios over the covered queries, plus evalDBMS time.
type evalPoint struct {
	QPms, QPMinusms, DBMSms float64
	PDQ, PDQMinus           float64 // accessed/|D|
	DBMSSkipped             bool
}

func measure(d *workload.Dataset, db *store.DB, results []*cover.Result, cfg Config) (evalPoint, error) {
	var pt evalPoint
	size := db.Size()
	if len(results) == 0 {
		return pt, fmt.Errorf("bench: no covered queries to measure")
	}
	for _, res := range results {
		// evalQP: with minimized access schema.
		am, err := minimize.MinA(res, minimize.DefaultOptions())
		if err != nil {
			return pt, err
		}
		resMin, err := cover.Check(res.Query, d.Schema, am)
		if err != nil {
			return pt, err
		}
		pMin, err := plan.Build(resMin)
		if err != nil {
			return pt, err
		}
		_, stMin, err := exec.Run(pMin, db)
		if err != nil {
			return pt, err
		}
		pt.QPms += float64(stMin.Duration.Microseconds()) / 1000
		pt.PDQ += float64(stMin.Accessed) / float64(size)

		// evalQP⁻: full access schema, no minimization.
		pFull, err := plan.Build(res)
		if err != nil {
			return pt, err
		}
		_, stFull, err := exec.Run(pFull, db)
		if err != nil {
			return pt, err
		}
		pt.QPMinusms += float64(stFull.Duration.Microseconds()) / 1000
		pt.PDQMinus += float64(stFull.Accessed) / float64(size)

		// evalDBMS.
		if cfg.BaselineCap > 0 && size > cfg.BaselineCap {
			pt.DBMSSkipped = true
		} else {
			_, stBase, err := exec.RunBaseline(res.Query, d.Schema, db)
			if err != nil {
				return pt, err
			}
			pt.DBMSms += float64(stBase.Duration.Microseconds()) / 1000
		}
	}
	n := float64(len(results))
	pt.QPms /= n
	pt.QPMinusms /= n
	pt.DBMSms /= n
	pt.PDQ /= n
	pt.PDQMinus /= n
	return pt, nil
}

// Fig5VaryD reproduces Fig. 5(a/e/i) for one dataset: time and P(D_Q)
// while |D| sweeps scale factors 2⁻⁵ … 1.
func Fig5VaryD(w io.Writer, d *workload.Dataset, cfg Config) error {
	fmt.Fprintf(w, "# Figure 5 (vary |D|) on %s: evalQP vs evalQP- vs evalDBMS\n", d.Name)
	fmt.Fprintln(w, "scale\t|D|\tevalQP(ms)\tevalQP-(ms)\tevalDBMS(ms)\tP(DQ)\tP(DQ)-")
	pool, err := queryPool(d, cfg)
	if err != nil {
		return err
	}
	for i := 5; i >= 0; i-- {
		scale := cfg.FullScale / float64(int(1)<<i)
		db, err := d.Gen(scale, cfg.Seed)
		if err != nil {
			return err
		}
		results, err := coveredQueries(d, pool, d.Access, cfg.EvalQueries)
		if err != nil {
			return err
		}
		pt, err := measure(d, db, results, cfg)
		if err != nil {
			return err
		}
		dbms := fmt.Sprintf("%.2f", pt.DBMSms)
		if pt.DBMSSkipped {
			dbms = "skip"
		}
		fmt.Fprintf(w, "2^-%d\t%d\t%.2f\t%.2f\t%s\t%.2e\t%.2e\n",
			i, db.Size(), pt.QPms, pt.QPMinusms, dbms, pt.PDQ, pt.PDQMinus)
	}
	return nil
}

// Fig5VarySel reproduces Fig. 5(b/f/j): vary #-sel from 4 to 9.
func Fig5VarySel(w io.Writer, d *workload.Dataset, cfg Config) error {
	fmt.Fprintf(w, "# Figure 5 (vary #-sel) on %s\n", d.Name)
	fmt.Fprintln(w, "#-sel\tevalQP(ms)\tevalDBMS(ms)\tP(DQ)")
	db, err := d.Gen(cfg.FullScale, cfg.Seed)
	if err != nil {
		return err
	}
	return varyParam(w, d, db, cfg, "sel", 4, 9)
}

// Fig5VaryJoin reproduces Fig. 5(c/g/k): vary #-join from 0 to 5.
func Fig5VaryJoin(w io.Writer, d *workload.Dataset, cfg Config) error {
	fmt.Fprintf(w, "# Figure 5 (vary #-join) on %s\n", d.Name)
	fmt.Fprintln(w, "#-join\tevalQP(ms)\tevalDBMS(ms)\tP(DQ)")
	db, err := d.Gen(cfg.FullScale, cfg.Seed)
	if err != nil {
		return err
	}
	return varyParam(w, d, db, cfg, "join", 0, 5)
}

func varyParam(w io.Writer, d *workload.Dataset, db *store.DB, cfg Config, param string, lo, hi int) error {
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	for v := lo; v <= hi; v++ {
		p := workload.DefaultQueryParams()
		switch param {
		case "sel":
			p.Sel = v
			p.Join = 2
		case "join":
			p.Sel = 5
			p.Join = v
		}
		p.UniDiff = 1
		var results []*cover.Result
		for tries := 0; tries < 200 && len(results) < cfg.EvalQueries; tries++ {
			q, err := d.RandomQuery(p, rng)
			if err != nil {
				return err
			}
			one, err := coveredQueries(d, []ra.Query{q}, d.Access, 1)
			if err != nil {
				return err
			}
			results = append(results, one...)
		}
		if len(results) == 0 {
			fmt.Fprintf(w, "%d\t-\t-\t-\n", v)
			continue
		}
		pt, err := measure(d, db, results, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t%.2f\t%.2f\t%.2e\n", v, pt.QPms, pt.DBMSms, pt.PDQ)
	}
	return nil
}

// Fig5VaryA reproduces Fig. 5(d/h/l): vary the fraction of access
// constraints from 0.2 to 1.0.
func Fig5VaryA(w io.Writer, d *workload.Dataset, cfg Config) error {
	fmt.Fprintf(w, "# Figure 5 (vary ||A||) on %s\n", d.Name)
	fmt.Fprintln(w, "fracA\tevalQP(ms)\tP(DQ)\t#covered")
	db, err := d.Gen(cfg.FullScale, cfg.Seed)
	if err != nil {
		return err
	}
	pool, err := queryPool(d, cfg)
	if err != nil {
		return err
	}
	// Fix the workload to queries covered under the full schema; each
	// fraction point measures those of them it still covers (the paper
	// likewise "tested the queries that are covered").
	fixed, err := coveredQueries(d, pool, d.Access, cfg.EvalQueries*3)
	if err != nil {
		return err
	}
	for _, f := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		A := d.AccessFraction(f)
		var results []*cover.Result
		for _, r := range fixed {
			res, err := cover.Check(r.Query, d.Schema, A)
			if err != nil {
				return err
			}
			if res.Covered {
				results = append(results, res)
			}
		}
		if len(results) == 0 {
			fmt.Fprintf(w, "%.1f\t-\t-\t0\n", f)
			continue
		}
		pt, err := measure(d, db, results, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%.1f\t%.2f\t%.2e\t%d\n", f, pt.QPms, pt.PDQ, len(results))
	}
	return nil
}

// IndexStats reproduces Exp-1(IV): index entries and build time per
// dataset at full scale.
func IndexStats(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "# Exp-1(IV): index size and build time")
	fmt.Fprintln(w, "dataset\t|D|\tindexEntries\tratio\tbuild(ms)")
	for _, d := range workload.All() {
		start := time.Now()
		db, err := d.Gen(cfg.FullScale, cfg.Seed)
		if err != nil {
			return err
		}
		build := time.Since(start)
		fmt.Fprintf(w, "%s\t%d\t%d\t%.2f\t%d\n",
			d.Name, db.Size(), db.IndexEntries(),
			float64(db.IndexEntries())/float64(db.Size()),
			build.Milliseconds())
	}
	return nil
}

// Exp2 reproduces the Exp-2 table: maximum latency of ChkCov, QPlan, minA,
// minADAG and minAE over the query pool (paper: ≤ 199 ms in all cases).
func Exp2(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "# Exp-2: analysis latency (max over pool, ms)")
	fmt.Fprintln(w, "dataset\tChkCov\tQPlan\tminA\tminADAG\tminAE")
	for _, d := range workload.All() {
		pool, err := queryPool(d, cfg)
		if err != nil {
			return err
		}
		var maxChk, maxPlan, maxMinA, maxDAG, maxAE time.Duration
		dagApplicable, aeApplicable := 0, 0
		for _, q := range pool {
			t0 := time.Now()
			res, err := cover.Check(q, d.Schema, d.Access)
			if err != nil {
				return err
			}
			if dt := time.Since(t0); dt > maxChk {
				maxChk = dt
			}
			if !res.Covered {
				continue
			}
			t1 := time.Now()
			if _, err := plan.Build(res); err != nil {
				return err
			}
			if dt := time.Since(t1); dt > maxPlan {
				maxPlan = dt
			}
			t2 := time.Now()
			if _, err := minimize.MinA(res, minimize.DefaultOptions()); err != nil {
				return err
			}
			if dt := time.Since(t2); dt > maxMinA {
				maxMinA = dt
			}
			if minimize.IsAcyclic(res) {
				dagApplicable++
				t3 := time.Now()
				if _, err := minimize.MinADAG(res); err != nil {
					return err
				}
				if dt := time.Since(t3); dt > maxDAG {
					maxDAG = dt
				}
			}
			if minimize.IsElementary(d.Access) {
				aeApplicable++
				t4 := time.Now()
				if _, err := minimize.MinAE(res); err != nil {
					return err
				}
				if dt := time.Since(t4); dt > maxAE {
					maxAE = dt
				}
			}
		}
		ae := fmt.Sprintf("%.2f", float64(maxAE.Microseconds())/1000)
		if aeApplicable == 0 {
			ae = "n/a"
		}
		dag := fmt.Sprintf("%.2f", float64(maxDAG.Microseconds())/1000)
		if dagApplicable == 0 {
			dag = "n/a"
		}
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\t%s\t%s\n", d.Name,
			float64(maxChk.Microseconds())/1000,
			float64(maxPlan.Microseconds())/1000,
			float64(maxMinA.Microseconds())/1000,
			dag, ae)
	}
	return nil
}

// Exp2Elementary exercises minAE on a purpose-built elementary instance so
// the Exp-2 row is never empty (our benchmark schemas are not elementary).
func Exp2Elementary(w io.Writer) error {
	s := ra.Schema{"r": {"a", "b"}, "s": {"b", "c"}}
	A := access.NewSchema(
		access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b"}, N: 4},
		access.Constraint{Rel: "s", X: []string{"b"}, Y: []string{"c"}, N: 7},
		access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"a"}, N: 1},
		access.Constraint{Rel: "s", X: []string{"b"}, Y: []string{"b"}, N: 1},
	)
	q := ra.Proj(
		ra.Sel(ra.Prod(ra.R("r", "r1"), ra.R("s", "s1")),
			ra.EqC(ra.A("r1", "a"), value.NewInt(1)),
			ra.Eq(ra.A("r1", "b"), ra.A("s1", "b"))),
		ra.A("s1", "b"),
	)
	norm, err := ra.Normalize(q, s)
	if err != nil {
		return err
	}
	res, err := cover.Check(norm, s, A)
	if err != nil {
		return err
	}
	t0 := time.Now()
	am, err := minimize.MinAE(res)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# minAE (elementary instance): %.3f ms, |Am| = %d, ΣN = %d\n",
		float64(time.Since(t0).Microseconds())/1000, am.Len(), am.SumN())
	return nil
}

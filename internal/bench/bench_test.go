package bench

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/workload"
)

func firstDataset() *workload.Dataset { return workload.Airca() }

// tinyCfg keeps harness self-tests fast.
func tinyCfg() Config {
	return Config{QueryPool: 20, EvalQueries: 2, FullScale: 1.0 / 16, Seed: 2016}
}

func TestFig6Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig6(&buf, tinyCfg()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// 3 datasets × 5 fractions + 2 header lines.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 17 {
		t.Errorf("Fig6 emitted %d lines, want 17:\n%s", len(lines), out)
	}
	// Coverage at fraction 0 must be 0; the series must be monotone in f.
	var prev float64 = -1
	for _, l := range lines[2:] {
		var ds string
		var f, cov, bnd float64
		if _, err := sscan(l, &ds, &f, &cov, &bnd); err != nil {
			t.Fatalf("bad line %q: %v", l, err)
		}
		if f == 0 {
			if cov != 0 {
				t.Errorf("%s: covered%% %f at zero constraints", ds, cov)
			}
			prev = -1
		}
		if cov < prev {
			t.Errorf("%s: covered%% not monotone at f=%.2f", ds, f)
		}
		prev = cov
		if bnd < cov {
			t.Errorf("%s: bounded%% %.1f < covered%% %.1f", ds, bnd, cov)
		}
	}
}

func sscan(line string, ds *string, f, cov, bnd *float64) (int, error) {
	fields := strings.Split(line, "\t")
	if len(fields) != 4 {
		return 0, fmt.Errorf("want 4 fields, got %d", len(fields))
	}
	*ds = fields[0]
	for i, dst := range []*float64{f, cov, bnd} {
		v, err := strconv.ParseFloat(fields[i+1], 64)
		if err != nil {
			return i + 1, err
		}
		*dst = v
	}
	return 4, nil
}

func TestFig5VaryDOutput(t *testing.T) {
	var buf bytes.Buffer
	d := firstDataset()
	if err := Fig5VaryD(&buf, d, tinyCfg()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 8 { // 2 headers + 6 scales
		t.Errorf("vary-D emitted %d lines:\n%s", len(lines), buf.String())
	}
}

func TestIndexStatsOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := IndexStats(&buf, tinyCfg()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "AIRCA") {
		t.Errorf("IndexStats output:\n%s", buf.String())
	}
}

func TestExp2Elementary(t *testing.T) {
	var buf bytes.Buffer
	if err := Exp2Elementary(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "minAE") {
		t.Errorf("Exp2Elementary output:\n%s", buf.String())
	}
}

func TestQueryPoolDeterministic(t *testing.T) {
	d := firstDataset()
	cfg := tinyCfg()
	a, err := queryPool(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := queryPool(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("pool sizes differ")
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("pool not deterministic at %d:\n%s\nvs\n%s", i, a[i], b[i])
		}
	}
}

package core

// The crash-recovery harness: kill a durable engine mid-write-storm —
// including with a torn final record — recover the directory, and prove
// by a full differential sweep that the recovered engine answers every
// workload template exactly like an oracle built by replaying the
// surviving log through the public API onto a fresh seed. Two kill
// modes: an in-process "crash" (the engine is simply abandoned and the
// log tail corrupted on disk), and a real SIGKILL of a child process
// running fsync=commit, which additionally proves that every
// acknowledged write survived.

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/wal"
	"repro/internal/workload"
)

// replayOracle builds the ground-truth engine for a crashed directory:
// a fresh in-memory engine over the same generated seed, fed every
// record that survives in the log — in log order, through the public
// API. Recovery (newest checkpoint + replay suffix + one index rebuild)
// must converge to exactly this state.
func replayOracle(t *testing.T, d *workload.Dataset, scale float64, seed int64, dir string) *Engine {
	t.Helper()
	odb, err := d.Gen(scale, seed)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := NewEngine(d.Schema, d.Access, odb)
	if err != nil {
		t.Fatal(err)
	}
	err = wal.Records(dir, 0, func(rec wal.Record) error {
		switch rec.Kind {
		case wal.KindTuple:
			if rec.Op.Del {
				_, err := oracle.Delete(rec.Op.Rel, rec.Op.T)
				return err
			}
			_, err := oracle.Insert(rec.Op.Rel, rec.Op.T)
			return err
		case wal.KindAddConstraint:
			return oracle.AddConstraints(rec.Con)
		case wal.KindRemoveConstraint:
			oracle.RemoveConstraint(rec.Con)
			return nil
		}
		return fmt.Errorf("unknown record kind %d", rec.Kind)
	})
	if err != nil {
		t.Fatal(err)
	}
	return oracle
}

// lastSegment returns the path of the highest-numbered log segment.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no log segments in %s: %v", dir, err)
	}
	sort.Strings(paths)
	return paths[len(paths)-1]
}

// truncateTail cuts n bytes off the end of path, simulating a crash that
// tore the final record mid-write.
func truncateTail(t *testing.T, path string, n int64) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() < n {
		t.Fatalf("segment %s too small (%d bytes) to tear %d", path, fi.Size(), n)
	}
	if err := os.Truncate(path, fi.Size()-n); err != nil {
		t.Fatal(err)
	}
}

// assertRecoveredState compares the recovered engine against the oracle
// on every cheap global measure and then sweeps every workload template.
func assertRecoveredState(t *testing.T, d *workload.Dataset, rec, oracle *Engine) {
	t.Helper()
	if rec.DBSize() != oracle.DBSize() {
		t.Fatalf("recovered |D| = %d, oracle %d", rec.DBSize(), oracle.DBSize())
	}
	if got, want := len(rec.AccessSnapshot().Constraints), len(oracle.AccessSnapshot().Constraints); got != want {
		t.Fatalf("recovered ‖A‖ = %d, oracle %d", got, want)
	}
	if rec.IndexEntries() != oracle.IndexEntries() {
		t.Fatalf("recovered |I_A| = %d, oracle %d", rec.IndexEntries(), oracle.IndexEntries())
	}
	assertSameAnswers(t, d, rec, oracle)
}

// TestCrashRecoveryTornTailDifferential storms a durable engine from
// concurrent writers, takes one checkpoint mid-storm, abandons the
// engine without Close, tears the final record on disk, and requires
// recovery to match the replay oracle exactly.
func TestCrashRecoveryTornTailDifferential(t *testing.T) {
	const scale, seed = 0.02, 13
	d := workload.Airca()
	dir := t.TempDir()
	db, err := d.Gen(scale, seed)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := OpenDurable(d.Schema, d.Access, db, durableTestConfig(dir))
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent storm: each goroutine owns a disjoint row set, so every
	// interleaving of the log is a valid linearization of the storm.
	rows := sampleRows(t, eng.DB(), "ontime", 96)
	const writers = 4
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := g; i < len(rows); i += writers {
				r := rows[i]
				if _, err := eng.Delete("ontime", r); err != nil {
					t.Error(err)
					return
				}
				if i%2 == 0 {
					if _, err := eng.Insert("ontime", r); err != nil {
						t.Error(err)
						return
					}
				}
				if i%8 == g%8 {
					// A batch through the durable batch path.
					err := eng.ApplyBatch([]store.TupleOp{
						{Rel: "ontime", T: r, Del: false},
						{Rel: "ontime", T: r, Del: true},
					})
					if err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	// One checkpoint mid-storm: recovery must splice snapshot + suffix,
	// and the torn tail below lands safely past the checkpoint stamp.
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	// A sequential coda strictly after the checkpoint returned: the torn
	// record below is guaranteed to be past the checkpoint stamp, so
	// recovery and the oracle lose exactly the same suffix.
	for i := 0; i < 8; i++ {
		r := rows[i]
		if _, err := eng.Delete("ontime", r); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Insert("ontime", r); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := eng.DurabilityStats()
	// Crash: no Close. Tear the last record by cutting bytes off the
	// final segment — recovery must truncate it and keep the prefix.
	truncateTail(t, lastSegment(t, dir), 5)

	rec, err := OpenDurable(d.Schema, nil, nil, durableTestConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	rst, _ := rec.DurabilityStats()
	if rst.LastLSN >= st.LastLSN {
		t.Fatalf("tear lost nothing: recovered LSN %d, pre-crash %d", rst.LastLSN, st.LastLSN)
	}
	oracle := replayOracle(t, d, scale, seed, dir)
	assertRecoveredState(t, d, rec, oracle)
}

// crashChildEnv names the data directory handed to the SIGKILL child;
// TestCrashChild is inert unless it is set.
const crashChildEnv = "BOUNDED_CRASH_CHILD_DIR"

// Parameters shared by the SIGKILL parent and child. The child seeds the
// directory itself; the parent only reads the log afterwards, so only
// the dataset parameters need to agree.
const (
	crashScale = 0.02
	crashSeed  = int64(29)
)

// ackPath is the side file where the child publishes the last durable
// LSN it has acknowledged (written atomically via rename).
func ackPath(dir string) string { return filepath.Join(dir, "acked") }

// TestCrashChild is the victim process of TestCrashRecoverySIGKILL: it
// opens a durable engine with fsync=commit in the directory named by the
// environment and storms writes forever, publishing each acknowledged
// LSN, until the parent kills it.
func TestCrashChild(t *testing.T) {
	dir := os.Getenv(crashChildEnv)
	if dir == "" {
		t.Skip("crash child: run only as a subprocess of TestCrashRecoverySIGKILL")
	}
	d := workload.Airca()
	db, err := d.Gen(crashScale, crashSeed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := durableTestConfig(dir)
	cfg.WAL.Fsync = wal.SyncCommit
	eng, err := OpenDurable(d.Schema, d.Access, db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := sampleRows(t, eng.DB(), "ontime", 64)
	tmp := ackPath(dir) + ".tmp"
	for i := 0; ; i++ {
		r := rows[i%len(rows)]
		if _, err := eng.Delete("ontime", r); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Insert("ontime", r); err != nil {
			t.Fatal(err)
		}
		// The write above is durable (fsync=commit): publish its LSN as
		// acknowledged. Everything at or below this LSN must survive the
		// kill.
		st, _ := eng.DurabilityStats()
		if err := os.WriteFile(tmp, []byte(strconv.FormatUint(st.LastLSN, 10)), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(tmp, ackPath(dir)); err != nil {
			t.Fatal(err)
		}
	}
}

// readAcked returns the last acknowledged LSN the child published, or 0.
func readAcked(dir string) uint64 {
	b, err := os.ReadFile(ackPath(dir))
	if err != nil {
		return 0
	}
	n, err := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// TestCrashRecoverySIGKILL re-executes this test binary as a child
// running TestCrashChild with fsync=commit, SIGKILLs it mid-storm, and
// proves recovery keeps every acknowledged write: the recovered log tail
// is at or past the last LSN the child acknowledged, and the recovered
// state matches the replay oracle over the surviving log.
func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill test skipped in -short")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Skipf("cannot re-exec test binary: %v", err)
	}
	dir := t.TempDir()
	cmd := exec.Command(exe, "-test.run=^TestCrashChild$", "-test.v")
	cmd.Env = append(os.Environ(), crashChildEnv+"="+dir)
	var out strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Let the child commit a healthy stretch of fsynced writes, then
	// kill it with no warning whatsoever.
	deadline := time.Now().Add(30 * time.Second)
	for readAcked(dir) < 40 {
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			t.Fatalf("child never reached 40 acked writes; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait() // the kill makes the child's exit status uninteresting

	acked := readAcked(dir)
	d := workload.Airca()
	rec, err := OpenDurable(d.Schema, nil, nil, durableTestConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	st, _ := rec.DurabilityStats()
	if st.LastLSN < acked {
		t.Fatalf("lost acknowledged writes: recovered LSN %d < acked %d", st.LastLSN, acked)
	}
	oracle := replayOracle(t, d, crashScale, crashSeed, dir)
	assertRecoveredState(t, d, rec, oracle)
}

package core

import (
	"sync"
	"testing"
)

// TestConcurrentExecute runs many queries against one engine from parallel
// goroutines: the store's read path and atomic access counters must be
// safe for concurrent readers (run under -race in CI).
func TestConcurrentExecute(t *testing.T) {
	eng, fb := engine(t)
	want, _, err := eng.ExecuteBaseline(fb.Q1())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				table, _, err := eng.Execute(fb.Q1(), DefaultOptions())
				if err != nil {
					errs <- err
					return
				}
				if !table.Equal(want) {
					errs <- errDiff
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errDiff = errString("concurrent answer differs")

type errString string

func (e errString) Error() string { return string(e) }

package core

import (
	"strings"
	"testing"

	"repro/internal/access"
	"repro/internal/discovery"
	"repro/internal/ra"
	"repro/internal/value"
	"repro/internal/workload"
)

func engine(t *testing.T) (*Engine, *workload.Facebook) {
	t.Helper()
	cfg := workload.DefaultFacebookConfig()
	cfg.Persons = 200
	fb, db, err := workload.GenFacebook(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(fb.Schema, fb.Access, db)
	if err != nil {
		t.Fatal(err)
	}
	return eng, fb
}

func TestExecuteCoveredQueryBoundedPath(t *testing.T) {
	eng, fb := engine(t)
	table, rep, err := eng.Execute(fb.Q1(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Covered || !rep.Bounded {
		t.Errorf("Q1 should run bounded: %+v", rep)
	}
	if rep.Plan == nil || rep.Minimized == nil {
		t.Error("report missing plan / minimized schema")
	}
	if rep.Stats.Scanned != 0 {
		t.Errorf("bounded path scanned %d tuples", rep.Stats.Scanned)
	}
	// Agreement with the baseline.
	want, _, err := eng.ExecuteBaseline(fb.Q1())
	if err != nil {
		t.Fatal(err)
	}
	if !table.Equal(want) {
		t.Error("bounded and baseline answers differ")
	}
	// Exp-2-style latency sanity: analysis must be fast.
	if rep.CheckTime.Milliseconds() > 1000 || rep.PlanTime.Milliseconds() > 1000 {
		t.Errorf("analysis too slow: check=%v plan=%v", rep.CheckTime, rep.PlanTime)
	}
}

func TestExecuteQ0UsesRewrite(t *testing.T) {
	eng, fb := engine(t)
	table, rep, err := eng.Execute(fb.Q0(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Rewritten {
		t.Fatalf("Q0 should be rewritten to covered form: %+v", rep)
	}
	if !rep.Bounded {
		t.Error("rewritten Q0 should run bounded")
	}
	want, _, err := eng.ExecuteBaseline(fb.Q0())
	if err != nil {
		t.Fatal(err)
	}
	if !table.Equal(want) {
		t.Error("rewritten bounded answer differs from baseline Q0")
	}
}

func TestExecuteFallback(t *testing.T) {
	eng, fb := engine(t)
	opts := DefaultOptions()
	opts.Rewrite = false
	table, rep, err := eng.Execute(fb.Q2(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Covered || rep.Bounded {
		t.Error("Q2 must take the fallback path")
	}
	if table.Len() == 0 {
		t.Error("fallback produced no answer")
	}
	if rep.Stats.Scanned == 0 {
		t.Error("fallback should scan")
	}
	// Without fallback, Execute errors.
	opts.FallbackToBaseline = false
	if _, _, err := eng.Execute(fb.Q2(), opts); err == nil {
		t.Error("expected error for uncovered query without fallback")
	}
}

func TestExecuteWithoutMinimize(t *testing.T) {
	eng, fb := engine(t)
	opts := DefaultOptions()
	opts.Minimize = false
	_, rep, err := eng.Execute(fb.Q1(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Minimized != nil {
		t.Error("minimization ran despite being disabled")
	}
	if !rep.Bounded {
		t.Error("bounded path should still run")
	}
}

func TestEngineParse(t *testing.T) {
	eng, _ := engine(t)
	q, err := eng.Parse("q(cid) :- friend(0, f), dine(f, cid, 5, 2015), cafe(cid, 'nyc')")
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Check(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Error("parsed Q1 should be covered")
	}
}

func TestEngineSQL(t *testing.T) {
	eng, fb := engine(t)
	sql, err := eng.SQL(fb.Q1())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "ind_") {
		t.Error("SQL does not reference index relations")
	}
	if _, err := eng.SQL(fb.Q2()); err == nil {
		t.Error("SQL for uncovered query should fail")
	}
}

func TestEngineDiscoverAndAdd(t *testing.T) {
	eng, fb := engine(t)
	opts := discovery.DefaultOptions()
	opts.MaxN = 64
	found, err := eng.Discover(opts)
	if err != nil {
		t.Fatal(err)
	}
	if found.Len() == 0 {
		t.Fatal("nothing discovered")
	}
	before := eng.AccessSnapshot().Len()
	if err := eng.AddConstraints(found.Constraints...); err != nil {
		t.Fatal(err)
	}
	if eng.AccessSnapshot().Len() <= before {
		t.Error("no constraints added")
	}
	// Duplicates are skipped silently.
	if err := eng.AddConstraints(found.Constraints...); err != nil {
		t.Fatal(err)
	}
	// Invalid constraints are rejected atomically.
	err = eng.AddConstraints(access.Constraint{Rel: "nosuch", X: []string{"x"}, Y: []string{"y"}, N: 1})
	if err == nil {
		t.Error("invalid constraint accepted")
	}
	_ = fb
}

func TestNewEngineValidation(t *testing.T) {
	s := ra.Schema{"r": {"a"}}
	bad := access.NewSchema(access.Constraint{Rel: "zzz", X: []string{"a"}, Y: []string{"a"}, N: 1})
	if _, err := NewEngine(s, bad, nil); err == nil {
		t.Error("engine accepted invalid access schema")
	}
	good := access.NewSchema(access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"a"}, N: 1})
	eng, err := NewEngine(s, good, nil)
	if err != nil {
		t.Fatal(err)
	}
	if eng.DB() == nil {
		t.Error("nil db not defaulted")
	}
}

func TestExecuteMoreConstraintsNeverHurtCoverage(t *testing.T) {
	eng, fb := engine(t)
	// Query covered under A0 stays covered when more constraints arrive.
	found, err := eng.Discover(discovery.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddConstraints(found.Constraints...); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Check(fb.Q1())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Error("coverage lost after adding constraints")
	}
	// And answers remain correct.
	table, rep, err := eng.Execute(fb.Q1(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := eng.ExecuteBaseline(fb.Q1())
	if err != nil {
		t.Fatal(err)
	}
	if !table.Equal(want) {
		t.Error("answers differ after constraint discovery")
	}
	if !rep.Bounded {
		t.Error("bounded path lost")
	}
}

func TestExecuteEmptyAnswer(t *testing.T) {
	eng, _ := engine(t)
	// A city that does not exist: covered, bounded, empty result.
	q := ra.Proj(
		ra.Sel(ra.R("cafe", "c"), ra.EqC(ra.A("c", "city"), value.NewStr("atlantis")),
			ra.EqC(ra.A("c", "cid"), value.NewInt(1))),
		ra.A("c", "city"),
	)
	table, rep, err := eng.Execute(q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if table.Len() != 0 {
		t.Errorf("expected empty answer, got %d rows", table.Len())
	}
	if !rep.Bounded {
		t.Error("empty-answer query should still be bounded")
	}
}

package core

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/ivm"
	"repro/internal/store"
	"repro/internal/value"
)

// viewKey derives the serving key of a materialized answer. The answer of
// a query is independent of the engine version (tuple writes are
// maintained, schema changes purge), but the compile artifact stored with
// the view is shaped by the Minimize/Rewrite options, and error semantics
// differ too (an uncovered query with Rewrite off must keep failing under
// FallbackToBaseline=false) — so views are keyed per option shape, like
// plan-cache entries minus the version prefix.
func viewKey(fp string, opts Options) string {
	return fmt.Sprintf("m%t|r%t|%s", opts.Minimize, opts.Rewrite, fp)
}

// SetIVMConfig replaces the materialization policy, dropping every live
// view. A config with Budget <= 0 disables incremental answer maintenance
// entirely — reads always execute plans, writes skip delta dispatch.
// Engines start with ivm.DefaultConfig.
func (e *Engine) SetIVMConfig(cfg ivm.Config) {
	e.ivmMu.Lock()
	defer e.ivmMu.Unlock()
	if !cfg.Enabled() {
		e.views.Store(nil)
		return
	}
	e.views.Store(ivm.NewManager(cfg))
}

// IVMStats returns a snapshot of the materialization counters; the zero
// Stats when IVM is disabled.
func (e *Engine) IVMStats() ivm.Stats {
	if mgr := e.views.Load(); mgr != nil {
		return mgr.Stats()
	}
	return ivm.Stats{}
}

// PurgeMaterializations drops every live materialized answer. Version
// bumps do it automatically; it is exposed for cluster events that move
// rows between engines behind the fingerprints' backs (reshard,
// repartition).
func (e *Engine) PurgeMaterializations() {
	if mgr := e.views.Load(); mgr != nil {
		mgr.PurgeAll()
	}
}

// materialize builds and admits a view for a fingerprint that passed the
// admission check, under the exclusive materialization fence: with every
// writer excluded from [store apply + delta dispatch], the initial scan
// and the registration are one atomic step of the delta stream, so the
// view misses no write and double-counts none. Called with e.mu held
// shared; seed is the just-executed answer whose column labels the
// published snapshots adopt.
func (e *Engine) materialize(mgr *ivm.Manager, key string, c *compiled, seed *exec.Table) {
	e.ivmMu.Lock()
	defer e.ivmMu.Unlock()
	if e.views.Load() != mgr {
		// SetIVMConfig swapped the manager while we waited on the fence.
		return
	}
	if mgr.Has(key) || mgr.Denied(key) {
		return
	}
	v, err := ivm.Materialize(c.norm, e.schema, e.db, seed.Cols, mgr.Config().MaxViewRows)
	if err != nil {
		mgr.Deny(key)
		return
	}
	mgr.Admit(key, v, c)
}

// trackedWrite is the non-durable write path of an IVM-enabled engine:
// when any live view depends on rel, the store apply and the view delta
// dispatch happen under one per-tuple stripe lock, so store order and
// view order agree for every tuple.
func (e *Engine) trackedWrite(rel string, t value.Tuple, del bool) (bool, error) {
	e.ivmMu.RLock()
	defer e.ivmMu.RUnlock()
	mgr := e.views.Load()
	if mgr == nil || !mgr.Tracks(rel) {
		// No view depends on rel, and holding the fence shared means no
		// view over rel can be mid-build either — write plainly.
		if del {
			return e.db.Delete(rel, t)
		}
		return e.db.Insert(rel, t)
	}
	mu := &e.wstripes[writeStripe(rel, t)]
	mu.Lock()
	defer mu.Unlock()
	var (
		changed bool
		err     error
	)
	if del {
		changed, err = e.db.Delete(rel, t)
	} else {
		changed, err = e.db.Insert(rel, t)
	}
	if err == nil && changed {
		mgr.OnWrite([]store.TupleOp{{Rel: rel, T: t, Del: del}})
	}
	return changed, err
}

// trackedApplyBatch is ApplyBatch for an IVM-enabled engine: when a view
// depends on any batched relation, the batch holds its stripe locks
// across apply+dispatch (like the durable path) and forwards exactly the
// ops that changed the store.
func (e *Engine) trackedApplyBatch(ops []store.TupleOp) error {
	e.ivmMu.RLock()
	defer e.ivmMu.RUnlock()
	mgr := e.views.Load()
	track := false
	if mgr != nil {
		for _, op := range ops {
			if mgr.Tracks(op.Rel) {
				track = true
				break
			}
		}
	}
	if !track {
		return e.db.ApplyBatch(ops)
	}
	var stripes [64]bool
	for _, op := range ops {
		stripes[writeStripe(op.Rel, op.T)] = true
	}
	for i := range stripes {
		if stripes[i] {
			e.wstripes[i].Lock()
			defer e.wstripes[i].Unlock()
		}
	}
	changed, err := e.db.ApplyBatchReport(ops)
	var delta []store.TupleOp
	for i, op := range ops {
		if changed[i] {
			delta = append(delta, op)
		}
	}
	if len(delta) > 0 {
		mgr.OnWrite(delta)
	}
	return err
}

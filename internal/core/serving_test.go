package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/access"
	"repro/internal/value"
)

func TestPlanCacheHit(t *testing.T) {
	eng, fb := engine(t)
	t1, rep1, err := eng.Execute(fb.Q1(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep1.CacheHit {
		t.Fatal("first execution cannot be a cache hit")
	}
	t2, rep2, err := eng.Execute(fb.Q1(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.CacheHit {
		t.Fatal("second execution should hit the plan cache")
	}
	if !rep2.Bounded || rep2.Plan == nil {
		t.Error("cached execution lost the bounded plan")
	}
	if rep2.CheckTime != 0 || rep2.PlanTime != 0 || rep2.MinimizeTime != 0 {
		t.Error("cache hit should skip analysis entirely")
	}
	if !t1.Equal(t2) {
		t.Error("cached and uncached answers differ")
	}
	st := eng.CacheStats()
	if st.Hits < 1 || st.Misses < 1 {
		t.Errorf("cache stats not tracking: %+v", st)
	}
}

// The uncovered verdict is cached too: the second fallback execution skips
// CovChk and the rewriter.
func TestPlanCacheCachesFallback(t *testing.T) {
	eng, fb := engine(t)
	opts := DefaultOptions()
	opts.Rewrite = false
	if _, rep, err := eng.Execute(fb.Q2(), opts); err != nil || rep.CacheHit {
		t.Fatalf("first: %v %+v", err, rep)
	}
	table, rep, err := eng.Execute(fb.Q2(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CacheHit || rep.Covered || rep.Bounded {
		t.Errorf("cached fallback misreported: %+v", rep)
	}
	want, _, err := eng.ExecuteBaseline(fb.Q2())
	if err != nil {
		t.Fatal(err)
	}
	if !table.Equal(want) {
		t.Error("cached fallback answer differs from baseline")
	}
	// The cached verdict still honours FallbackToBaseline=false.
	opts.FallbackToBaseline = false
	if _, _, err := eng.Execute(fb.Q2(), opts); err == nil {
		t.Error("cached uncovered verdict must still error without fallback")
	}
}

// Queries that differ only in variable naming and atom order share one
// cache entry via the canonical fingerprint.
func TestPlanCacheNormalizedKey(t *testing.T) {
	eng, fb := engine(t)
	if _, _, err := eng.Execute(fb.Q1(), DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	// Re-parse Q1 from text: different occurrence names, different atom
	// order than the hand-built tree.
	q, err := eng.Parse("q(cid) :- cafe(cid, 'nyc'), dine(f, cid, 5, 2015), friend(0, f)")
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := eng.Execute(q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CacheHit {
		t.Error("reordered/renamed variant of Q1 should hit the same entry")
	}
}

func TestPlanCacheKeyedByOptions(t *testing.T) {
	eng, fb := engine(t)
	opts := DefaultOptions()
	if _, _, err := eng.Execute(fb.Q1(), opts); err != nil {
		t.Fatal(err)
	}
	opts.Minimize = false
	_, rep, err := eng.Execute(fb.Q1(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheHit {
		t.Error("different Minimize setting must not share a cache entry")
	}
	if rep.Minimized != nil {
		t.Error("minimization ran despite being disabled")
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	eng, fb := engine(t)
	eng.SetPlanCacheCapacity(0)
	for i := 0; i < 2; i++ {
		_, rep, err := eng.Execute(fb.Q1(), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if rep.CacheHit {
			t.Fatal("disabled cache served a hit")
		}
	}
	opts := DefaultOptions()
	opts.Cache = false
	eng.SetPlanCacheCapacity(64)
	if _, _, err := eng.Execute(fb.Q1(), opts); err != nil {
		t.Fatal(err)
	}
	if st := eng.CacheStats(); st.Hits+st.Misses != 0 {
		t.Error("opts.Cache=false still touched the cache")
	}
}

// Tuple inserts and deletes keep cached plans valid (Proposition 12): the
// cached bounded plan must see the new data, matching the baseline.
func TestInsertDeleteKeepCachedPlansValid(t *testing.T) {
	eng, fb := engine(t)
	if _, rep, err := eng.Execute(fb.Q1(), DefaultOptions()); err != nil || !rep.Bounded {
		t.Fatalf("warmup: %v %+v", err, rep)
	}
	v0 := eng.Version()

	// A fresh cafe in nyc where a friend of person 0 dined in May 2015:
	// this adds a row to Q1's answer through the friend→dine→cafe chain.
	friends, err := eng.DB().Fetch(access.Constraint{Rel: "friend", X: []string{"pid"}, Y: []string{"fid"}, N: 5000}, value.Tuple{fb.Me})
	if err != nil || len(friends) == 0 {
		t.Fatalf("no friends of p0: %v", err)
	}
	fid := friends[0][1]
	newCafe := value.Tuple{value.NewInt(999_999), value.NewStr("nyc")}
	newDine := value.Tuple{fid, value.NewInt(999_999), value.NewInt(5), value.NewInt(2015)}
	if _, err := eng.Insert("cafe", newCafe); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Insert("dine", newDine); err != nil {
		t.Fatal(err)
	}

	table, rep, err := eng.Execute(fb.Q1(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CacheHit {
		t.Error("tuple writes must not invalidate the plan cache")
	}
	if eng.Version() != v0 {
		t.Error("tuple writes must not bump the engine version")
	}
	if !table.Has(value.Tuple{value.NewInt(999_999)}) {
		t.Error("cached plan did not see the inserted tuples")
	}
	want, _, err := eng.ExecuteBaseline(fb.Q1())
	if err != nil {
		t.Fatal(err)
	}
	if !table.Equal(want) {
		t.Error("cached plan diverged from baseline after insert")
	}

	if _, err := eng.Delete("dine", newDine); err != nil {
		t.Fatal(err)
	}
	table, rep, err = eng.Execute(fb.Q1(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CacheHit || table.Has(value.Tuple{value.NewInt(999_999)}) {
		t.Error("cached plan did not see the deletion")
	}
}

// Removing a constraint drops its index; the cache must never serve a plan
// compiled against it (it would fetch a dropped index).
func TestCacheNeverServesPlanAcrossIndexDrop(t *testing.T) {
	eng, fb := engine(t)
	if _, rep, err := eng.Execute(fb.Q1(), DefaultOptions()); err != nil || !rep.Bounded {
		t.Fatalf("warmup: %v %+v", err, rep)
	}
	v0 := eng.Version()

	// ψ4 cafe(cid → city, 1) is essential to Q1's plan.
	psi4 := access.Constraint{Rel: "cafe", X: []string{"cid"}, Y: []string{"city"}, N: 1}
	if !eng.RemoveConstraint(psi4) {
		t.Fatal("ψ4 not found")
	}
	if eng.Version() == v0 {
		t.Error("constraint removal must bump the engine version")
	}

	table, rep, err := eng.Execute(fb.Q1(), DefaultOptions())
	if err != nil {
		t.Fatalf("execution after index drop failed: %v (stale plan served?)", err)
	}
	if rep.CacheHit {
		t.Error("cache served an entry across an index drop")
	}
	if rep.Bounded && rep.Stats.Scanned == 0 && !rep.Rewritten {
		// If still bounded it must be via a genuinely recompiled plan; a
		// stale plan would have errored on the missing index above.
		t.Log("query recompiled to a bounded plan without ψ4")
	}
	want, _, err := eng.ExecuteBaseline(fb.Q1())
	if err != nil {
		t.Fatal(err)
	}
	if !table.Equal(want) {
		t.Error("answer wrong after constraint removal")
	}

	// Re-adding recompiles back to the bounded path.
	if err := eng.AddConstraints(psi4); err != nil {
		t.Fatal(err)
	}
	_, rep, err = eng.Execute(fb.Q1(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheHit {
		t.Error("cache survived AddConstraints")
	}
	if !rep.Bounded {
		t.Error("bounded path not restored after re-adding ψ4")
	}
}

// TestConcurrentServing exercises the full serving regime under -race:
// readers execute cached and uncached queries while writers churn tuples
// and a third group flips the access schema. The churned tuples are
// disjoint from the answers of the probed queries, so every execution must
// return the quiesced answer, bounded or fallback alike.
func TestConcurrentServing(t *testing.T) {
	eng, fb := engine(t)
	wantQ1, _, err := eng.ExecuteBaseline(fb.Q1())
	if err != nil {
		t.Fatal(err)
	}
	wantQ0, _, err := eng.ExecuteBaseline(fb.Q0())
	if err != nil {
		t.Fatal(err)
	}

	const (
		readers      = 6
		writers      = 2
		schemaFlips  = 40
		readsPerGoro = 30
	)
	var (
		bounded  sync.WaitGroup // readers + schema mutator (bounded loops)
		writerWG sync.WaitGroup // writers (run until stop)
		stop     atomic.Bool
	)
	errs := make(chan error, readers*readsPerGoro+8)

	// Readers: alternate cached, uncached and parallel execution.
	for g := 0; g < readers; g++ {
		bounded.Add(1)
		go func(g int) {
			defer bounded.Done()
			for i := 0; i < readsPerGoro; i++ {
				opts := DefaultOptions()
				opts.Cache = i%2 == 0
				opts.Parallel = i%3 == 0
				q, want := fb.Q1(), wantQ1
				if i%5 == 0 {
					q, want = fb.Q0(), wantQ0
				}
				table, _, err := eng.Execute(q, opts)
				if err != nil {
					errs <- err
					return
				}
				if !table.Equal(want) {
					errs <- errDiff
					return
				}
			}
		}(g)
	}

	// Writers: insert and delete tuples that never satisfy the probed
	// queries' selections (person 900000+ and month 1/2020), so answers
	// stay fixed while every index on friend and dine churns.
	for g := 0; g < writers; g++ {
		writerWG.Add(1)
		go func(g int) {
			defer writerWG.Done()
			for i := 0; !stop.Load(); i++ {
				p := value.NewInt(int64(900_000 + g*10_000 + i%50))
				dine := value.Tuple{p, value.NewInt(int64(i % 7)), value.NewInt(1), value.NewInt(2020)}
				friend := value.Tuple{p, value.NewInt(int64(i % 11))}
				if _, err := eng.Insert("dine", dine); err != nil {
					errs <- err
					return
				}
				if _, err := eng.Insert("friend", friend); err != nil {
					errs <- err
					return
				}
				if _, err := eng.Delete("dine", dine); err != nil {
					errs <- err
					return
				}
				if _, err := eng.Delete("friend", friend); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}

	// Schema mutator: flip an auxiliary constraint that Q1's coverage does
	// not depend on, forcing cache invalidation storms mid-traffic.
	bounded.Add(1)
	go func() {
		defer bounded.Done()
		aux := access.Constraint{Rel: "dine", X: []string{"pid"}, Y: []string{"cid"}, N: 1000}
		for i := 0; i < schemaFlips; i++ {
			if err := eng.AddConstraints(aux); err != nil {
				errs <- err
				return
			}
			if !eng.RemoveConstraint(aux) {
				errs <- errString("aux constraint vanished")
				return
			}
		}
	}()

	bounded.Wait()
	stop.Store(true)
	writerWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiesced: cached and uncached paths agree with the baseline.
	for _, opts := range []Options{DefaultOptions(), {Minimize: true, Rewrite: true, FallbackToBaseline: true}} {
		table, _, err := eng.Execute(fb.Q1(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if !table.Equal(wantQ1) {
			t.Fatal("post-churn answer differs from baseline")
		}
	}
}

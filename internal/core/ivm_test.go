package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/access"
	"repro/internal/ivm"
	"repro/internal/ra"
	"repro/internal/store"
	"repro/internal/value"
	"repro/internal/workload"
)

// aggressiveIVM admits every plan-cache hit, so tests reach the
// materialized path deterministically without replay loops.
func aggressiveIVM() ivm.Config {
	return ivm.Config{Budget: 16, MinHits: 1, MinScore: 0, MaxViewRows: 1 << 18}
}

// ivmTestEngine builds a small hand-rolled engine: r(a,b) with a few
// rows, no access constraints (queries fall back to baseline execution,
// which exercises the same cache + materialization path).
func ivmTestEngine(t *testing.T) *Engine {
	t.Helper()
	schema := ra.Schema{"r": {"a", "b"}}
	db := store.NewDB(schema)
	for _, row := range [][2]int64{{1, 1}, {2, 1}, {3, 2}} {
		if _, err := db.Insert("r", value.Tuple{value.NewInt(row[0]), value.NewInt(row[1])}); err != nil {
			t.Fatal(err)
		}
	}
	eng, err := NewEngine(schema, access.NewSchema(), db)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetIVMConfig(aggressiveIVM())
	return eng
}

func itup(vals ...int64) value.Tuple {
	t := make(value.Tuple, len(vals))
	for i, v := range vals {
		t[i] = value.NewInt(v)
	}
	return t
}

// TestIVMFastPath drives one query hot and asserts the serving ladder:
// compile miss → plan-cache hit (which admits) → materialized serve, with
// identical answers at every rung.
func TestIVMFastPath(t *testing.T) {
	eng := ivmTestEngine(t)
	q, err := eng.Parse(`q(a) :- r(a, 1)`)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := eng.ExecuteBaseline(q)
	if err != nil {
		t.Fatal(err)
	}
	// Rung 1: cold compile.
	t1, rep1, err := eng.Execute(q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep1.CacheHit || rep1.Materialized {
		t.Fatalf("cold execute reported cacheHit=%v materialized=%v", rep1.CacheHit, rep1.Materialized)
	}
	// Rung 2: plan-cache hit; the aggressive config admits right after.
	t2, rep2, err := eng.Execute(q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.CacheHit || rep2.Materialized {
		t.Fatalf("second execute reported cacheHit=%v materialized=%v", rep2.CacheHit, rep2.Materialized)
	}
	// Rung 3: materialized serve.
	t3, rep3, err := eng.Execute(q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !rep3.Materialized || !rep3.CacheHit {
		t.Fatalf("third execute reported cacheHit=%v materialized=%v, want a materialized hit",
			rep3.CacheHit, rep3.Materialized)
	}
	for i, got := range []interface{ Len() int }{t1, t2, t3} {
		if got.(interface{ Len() int }).Len() != want.Len() {
			t.Fatalf("rung %d: %d rows, want %d", i+1, got.Len(), want.Len())
		}
	}
	if !t3.Equal(want) {
		t.Fatalf("materialized answer differs from baseline:\ngot %s\nwant %s", t3.String(), want.String())
	}
	st := eng.IVMStats()
	if st.Admitted < 1 || st.Hits < 1 || st.Materialized < 1 {
		t.Fatalf("stats after the ladder: %+v", st)
	}
}

// TestIVMReadYourWrites: writes through the engine must be visible in the
// very next materialized serve — the delta path, not a purge, keeps the
// answer current.
func TestIVMReadYourWrites(t *testing.T) {
	eng := ivmTestEngine(t)
	q, err := eng.Parse(`q(a) :- r(a, 1)`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := eng.Execute(q, DefaultOptions()); err != nil {
			t.Fatal(err)
		}
	}
	steps := []struct {
		op       store.TupleOp
		wantRows int
	}{
		{store.TupleOp{Rel: "r", T: itup(9, 1)}, 3},             // joins the answer
		{store.TupleOp{Rel: "r", T: itup(1, 1), Del: true}, 2},  // leaves it
		{store.TupleOp{Rel: "r", T: itup(50, 7)}, 2},            // irrelevant b
		{store.TupleOp{Rel: "r", T: itup(50, 7), Del: true}, 2}, // and gone again
	}
	for i, stp := range steps {
		var err error
		if stp.op.Del {
			_, err = eng.Delete(stp.op.Rel, stp.op.T)
		} else {
			_, err = eng.Insert(stp.op.Rel, stp.op.T)
		}
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		got, rep, err := eng.Execute(q, DefaultOptions())
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if !rep.Materialized {
			t.Fatalf("step %d: lost the materialization (fallbacks=%d)", i, eng.IVMStats().Fallbacks)
		}
		if got.Len() != stp.wantRows {
			t.Fatalf("step %d: %d rows after write, want %d", i, got.Len(), stp.wantRows)
		}
		want, _, err := eng.ExecuteBaseline(q)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("step %d: materialized answer diverged from baseline", i)
		}
	}
	if st := eng.IVMStats(); st.DeltaApplies < 2 {
		t.Fatalf("DeltaApplies = %d, want >= 2 (two answer-changing writes)", st.DeltaApplies)
	}
}

// TestIVMBatchWrites drives the ApplyBatch path: batched deltas must land
// in the view exactly like single writes, with no-op batch members
// filtered out.
func TestIVMBatchWrites(t *testing.T) {
	eng := ivmTestEngine(t)
	q, err := eng.Parse(`q(a) :- r(a, 1)`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := eng.Execute(q, DefaultOptions()); err != nil {
			t.Fatal(err)
		}
	}
	batch := []store.TupleOp{
		{Rel: "r", T: itup(10, 1)},            // answer gains 10
		{Rel: "r", T: itup(10, 1)},            // duplicate: must NOT double-count
		{Rel: "r", T: itup(2, 1), Del: true},  // answer loses 2
		{Rel: "r", T: itup(99, 9), Del: true}, // missing: no-op
	}
	if err := eng.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	got, rep, err := eng.Execute(q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Materialized {
		t.Fatal("batch write dropped the view")
	}
	want, _, err := eng.ExecuteBaseline(q)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("after batch: view %s, baseline %s", got.String(), want.String())
	}
	// Now delete the tuple the duplicate insert touched: if the duplicate
	// had been double-counted, the row would (wrongly) survive.
	if _, err := eng.Delete("r", itup(10, 1)); err != nil {
		t.Fatal(err)
	}
	got, _, err = eng.Execute(q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range got.Tuples() {
		if row[0].I == 10 {
			t.Fatal("tuple survived its delete: duplicate batch insert was double-counted")
		}
	}
}

// TestIVMVersionBumpPurges is the purge property: ANY access-schema
// generation bump — adding a constraint, removing one, InvalidatePlans,
// SyncVersion — must leave zero live materializations, checked over a
// randomized sequence of bump kinds.
func TestIVMVersionBumpPurges(t *testing.T) {
	d := workload.Airca()
	db, err := d.Gen(0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(d.Schema, d.Access, db)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetIVMConfig(aggressiveIVM())
	tpl := d.Templates()
	rng := rand.New(rand.NewSource(9))
	heat := func() {
		for i := 0; i < 3; i++ {
			q, err := eng.Parse(tpl[rng.Intn(len(tpl))].Src)
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < 3; j++ {
				if _, _, err := eng.Execute(q, DefaultOptions()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	cs := d.Access.Constraints
	bumps := []struct {
		name string
		do   func()
	}{
		{"remove+add constraint", func() {
			c := cs[rng.Intn(len(cs))]
			if !eng.RemoveConstraint(c) {
				t.Fatal("constraint not removed")
			}
			if err := eng.AddConstraints(c); err != nil {
				t.Fatal(err)
			}
		}},
		{"invalidate plans", func() { eng.InvalidatePlans() }},
		{"sync version", func() { eng.SyncVersion(eng.Version() + 1) }},
	}
	for round := 0; round < 6; round++ {
		heat()
		if eng.IVMStats().Materialized == 0 {
			t.Fatalf("round %d: heating admitted nothing", round)
		}
		b := bumps[rng.Intn(len(bumps))]
		before := eng.IVMStats().Purged
		b.do()
		st := eng.IVMStats()
		if st.Materialized != 0 {
			t.Fatalf("round %d: %d views survived %q", round, st.Materialized, b.name)
		}
		if st.Purged <= before {
			t.Fatalf("round %d: %q did not count purges", round, b.name)
		}
	}
}

// TestIVMDisabled: a Budget<=0 config must stop all materialization and
// serve every query through the plan path.
func TestIVMDisabled(t *testing.T) {
	eng := ivmTestEngine(t)
	eng.SetIVMConfig(ivm.Config{})
	q, err := eng.Parse(`q(a) :- r(a, 1)`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		_, rep, err := eng.Execute(q, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Materialized {
			t.Fatal("materialized serve from a disabled engine")
		}
	}
	if st := eng.IVMStats(); st != (ivm.Stats{}) {
		t.Fatalf("disabled engine reported non-zero stats: %+v", st)
	}
	if _, err := eng.Insert("r", itup(7, 7)); err != nil {
		t.Fatal(err)
	}
}

// TestIVMDeltaOracle is the delta-oracle wall at engine level: workload
// templates run hot on an IVM-forced engine while random write storms
// mutate the instance; after every batch, each template's answer must
// equal a fresh execution on an IVM-disabled oracle engine over an
// identically mutated copy.
func TestIVMDeltaOracle(t *testing.T) {
	for _, d := range workload.All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			db, err := d.Gen(0.02, 5)
			if err != nil {
				t.Fatal(err)
			}
			oracleDB, err := d.Gen(0.02, 5)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := NewEngine(d.Schema, d.Access, db)
			if err != nil {
				t.Fatal(err)
			}
			eng.SetIVMConfig(aggressiveIVM())
			oracle, err := NewEngine(d.Schema, d.Access, oracleDB)
			if err != nil {
				t.Fatal(err)
			}
			oracle.SetIVMConfig(ivm.Config{})

			var queries []ra.Query
			for _, tpl := range d.Templates() {
				q, err := eng.Parse(tpl.Src)
				if err != nil {
					t.Fatal(err)
				}
				queries = append(queries, q)
			}
			// Heat: three passes make every template a materialization
			// candidate under the aggressive config.
			for pass := 0; pass < 3; pass++ {
				for _, q := range queries {
					if _, _, err := eng.Execute(q, DefaultOptions()); err != nil {
						t.Fatal(err)
					}
				}
			}

			rng := rand.New(rand.NewSource(13))
			var rels []string
			samples := map[string][]value.Tuple{}
			for rel := range d.Schema {
				rows, err := db.Rows(rel)
				if err != nil {
					t.Fatal(err)
				}
				if len(rows) > 0 {
					rels = append(rels, rel)
					if len(rows) > 50 {
						rows = rows[:50]
					}
					samples[rel] = rows
				}
			}
			for batchNo := 0; batchNo < 8; batchNo++ {
				var batch []store.TupleOp
				for i := 0; i < 10; i++ {
					rel := rels[rng.Intn(len(rels))]
					rows := samples[rel]
					batch = append(batch, store.TupleOp{
						Rel: rel,
						T:   rows[rng.Intn(len(rows))],
						Del: rng.Intn(2) == 0,
					})
				}
				if err := eng.ApplyBatch(batch); err != nil {
					t.Fatal(err)
				}
				if err := oracle.ApplyBatch(batch); err != nil {
					t.Fatal(err)
				}
				for qi, q := range queries {
					got, _, err := eng.Execute(q, DefaultOptions())
					if err != nil {
						t.Fatalf("batch %d template %d: %v", batchNo, qi, err)
					}
					want, _, err := oracle.Execute(q, DefaultOptions())
					if err != nil {
						t.Fatalf("batch %d template %d oracle: %v", batchNo, qi, err)
					}
					if !got.Equal(want) {
						t.Fatalf("batch %d: template %d diverged from the oracle\nivm:    %s\noracle: %s",
							batchNo, qi, got.String(), want.String())
					}
				}
			}
			st := eng.IVMStats()
			if st.Admitted == 0 || st.DeltaApplies == 0 {
				t.Fatalf("the storm never exercised maintenance: %+v", st)
			}
		})
	}
}

// TestIVMConcurrentStorm hammers one IVM-enabled engine with concurrent
// hot readers, writers and config flips under -race: the invariant is no
// race, no error, and every served answer row-consistent with SOME
// quiescent state (checked at the end against a final baseline).
func TestIVMConcurrentStorm(t *testing.T) {
	d := workload.Airca()
	db, err := d.Gen(0.02, 7)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(d.Schema, d.Access, db)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetIVMConfig(aggressiveIVM())
	tpls := d.Templates()
	queries := make([]ra.Query, 0, len(tpls))
	for _, tpl := range tpls {
		q, err := eng.Parse(tpl.Src)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, q)
	}
	var rels []string
	samples := map[string][]value.Tuple{}
	for rel := range d.Schema {
		rows, err := db.Rows(rel)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) > 0 {
			rels = append(rels, rel)
			samples[rel] = rows
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	// Readers: hot template loops.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < 150; i++ {
				q := queries[rng.Intn(len(queries))]
				if _, _, err := eng.Execute(q, DefaultOptions()); err != nil {
					errCh <- fmt.Errorf("reader %d: %w", g, err)
					return
				}
			}
		}(g)
	}
	// Writers: delete+reinsert churn (quiescently a no-op) plus batches.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + g)))
			for i := 0; i < 150; i++ {
				rel := rels[rng.Intn(len(rels))]
				rows := samples[rel]
				tu := rows[rng.Intn(len(rows))]
				if i%5 == 0 {
					ops := []store.TupleOp{
						{Rel: rel, T: tu, Del: true},
						{Rel: rel, T: tu},
					}
					if err := eng.ApplyBatch(ops); err != nil {
						errCh <- fmt.Errorf("writer %d: %w", g, err)
						return
					}
					continue
				}
				if _, err := eng.Delete(rel, tu); err != nil {
					errCh <- fmt.Errorf("writer %d: %w", g, err)
					return
				}
				if _, err := eng.Insert(rel, tu); err != nil {
					errCh <- fmt.Errorf("writer %d: %w", g, err)
					return
				}
			}
		}(g)
	}
	// Config flipper: disables and re-enables maintenance mid-storm.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 12; i++ {
			eng.SetIVMConfig(ivm.Config{})
			eng.SetIVMConfig(aggressiveIVM())
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Quiescent check: every template answer must now equal its baseline
	// (the churn was net-zero), whether served materialized or not.
	for qi, q := range queries {
		got, _, err := eng.Execute(q, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := eng.ExecuteBaseline(q)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("template %d: post-storm answer diverged from baseline", qi)
		}
	}
}

// Package core wires the paper's components into the bounded-evaluation
// framework of Section 7 (Fig. 4): offline constraint discovery and index
// building (C1), coverage checking (C2), access minimization (C3), bounded
// plan generation (C4), SQL translation (C5) and execution (C6), with a
// conventional fallback for queries that are not covered.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/access"
	"repro/internal/cache"
	"repro/internal/cover"
	"repro/internal/discovery"
	"repro/internal/exec"
	"repro/internal/ivm"
	"repro/internal/minimize"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/ra"
	"repro/internal/rewrite"
	"repro/internal/sqlgen"
	"repro/internal/store"
	"repro/internal/value"
	"repro/internal/wal"
)

// DefaultPlanCacheSize is the capacity (entries) of the plan cache built by
// NewEngine, and DefaultPlanCacheShards its shard count.
const (
	DefaultPlanCacheSize   = 512
	DefaultPlanCacheShards = 16
)

// Engine is a bounded-evaluation engine bound to a relational schema, an
// access schema with built indices, and a database instance.
//
// An Engine is safe for concurrent use. Executions share the engine under
// a read lock, so any number run in parallel; access-schema mutations
// (AddConstraints, RemoveConstraint) take the write lock, which both
// serializes them against in-flight executions and lets them invalidate
// the plan cache atomically. Tuple-level writes (Insert, Delete) take only
// the store's lock: by Proposition 12 the indices I_A are maintained
// incrementally under insertions and deletions, so every cached plan stays
// valid and queries keep running concurrently with data churn.
type Engine struct {
	schema ra.Schema
	acc    *access.Schema
	db     *store.DB

	// mu guards acc and the index topology against Execute. Executions
	// hold it shared for their full duration, so a schema change never
	// lands mid-plan.
	mu sync.RWMutex
	// version counts access-schema / index generations; it is folded into
	// every plan-cache key, so entries compiled against a dropped or
	// rebuilt index can never be served again.
	version atomic.Uint64
	// plans caches compiled queries by canonical fingerprint. nil disables
	// caching (the zero Engine still works).
	plans *cache.Cache

	// views maintains materialized answers for hot fingerprints (nil
	// disables IVM; see SetIVMConfig). The pointer is atomic so the write
	// path can consult it without taking a lock when no views exist.
	views atomic.Pointer[ivm.Manager]
	// ivmMu fences materialization against tuple writes: every write that
	// might feed a view holds it shared across [store apply + delta
	// dispatch], and building a new view holds it exclusively across
	// [store scan + registration], so a view can neither miss a delta nor
	// double-count one. Lock order: ivmMu → ckmu → wstripes → db.
	ivmMu sync.RWMutex

	// wal, when non-nil, makes the engine durable (see OpenDurable): every
	// mutation is appended to the log before it is acknowledged. All other
	// durability fields are meaningful only when wal is set.
	wal *wal.Log
	// ckEvery triggers a background checkpoint every ckEvery appends.
	ckEvery int64
	// ckmu is the checkpoint barrier: every durable mutation holds it
	// shared across its append+apply pair, so Checkpoint (exclusive) can
	// read a log position W with no mutation in flight — the snapshot it
	// then saves is guaranteed to contain every op ≤ W. Ops > W may leak
	// into the snapshot after the barrier drops; that is harmless because
	// replay is idempotent and in-order (re-applying them converges).
	ckmu sync.RWMutex
	// wstripes orders append vs apply per tuple: the stripe lock is held
	// across both, so the log order of two writes to the same tuple always
	// matches their store order (writes to different tuples commute).
	wstripes [64]sync.Mutex
	// ckBusy ensures at most one background checkpoint runs at a time.
	ckBusy atomic.Bool
}

// Options tunes query processing.
type Options struct {
	// Minimize picks a minimal access sub-schema (minA family) before plan
	// generation, the C3 step. Default on in DefaultOptions.
	Minimize bool
	// Rewrite applies covered-form rewriting (difference guarding,
	// selection pushdown) when the query is not covered as given.
	Rewrite bool
	// FallbackToBaseline executes uncovered queries with the conventional
	// evaluator instead of returning an error.
	FallbackToBaseline bool
	// Cache serves repeated queries from the plan cache: queries with the
	// same canonical fingerprint (ra.Fingerprint) skip coverage checking,
	// rewriting, minimization and plan generation. Default on in
	// DefaultOptions.
	Cache bool
	// Parallel executes bounded plans with exec.RunParallel instead of
	// exec.Run, using Workers goroutines (0 = GOMAXPROCS).
	Parallel bool
	Workers  int
}

// DefaultOptions enables the full pipeline, including the plan cache.
func DefaultOptions() Options {
	return Options{Minimize: true, Rewrite: true, FallbackToBaseline: true, Cache: true}
}

// ErrNotCovered is returned when a query is not covered by the access
// schema and Options.FallbackToBaseline is off. The sharded router's
// residue executor returns the same error for the same condition, so a
// cluster and a single engine reject identically.
var ErrNotCovered = errors.New("core: query is not covered by the access schema")

// NewEngine validates the schemas, builds the indices I_A on db, and
// returns an engine ready to process queries, with a plan cache of
// DefaultPlanCacheSize entries.
func NewEngine(schema ra.Schema, A *access.Schema, db *store.DB) (*Engine, error) {
	if err := A.Validate(schema); err != nil {
		return nil, err
	}
	if db == nil {
		db = store.NewDB(schema)
	}
	if err := db.BuildIndexes(A); err != nil {
		return nil, err
	}
	e := &Engine{
		schema: schema,
		acc:    A,
		db:     db,
		plans:  cache.New(DefaultPlanCacheSize, DefaultPlanCacheShards),
	}
	e.views.Store(ivm.NewManager(ivm.DefaultConfig()))
	return e, nil
}

// SetPlanCacheCapacity replaces the plan cache with one of the given
// capacity, dropping all entries; capacity <= 0 disables caching.
func (e *Engine) SetPlanCacheCapacity(capacity int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if capacity <= 0 {
		e.plans = nil
		return
	}
	e.plans = cache.New(capacity, DefaultPlanCacheShards)
}

// CacheStats returns a snapshot of the plan-cache counters.
func (e *Engine) CacheStats() cache.Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.plans == nil {
		return cache.Stats{}
	}
	return e.plans.Stats()
}

// InvalidatePlans drops every cached plan and bumps the engine version.
// Execute does this automatically on access-schema changes; it is exposed
// for callers that mutate the database through a side channel the engine
// cannot see (e.g. DB.DropIndexes in experiments).
func (e *Engine) InvalidatePlans() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.invalidateLocked()
}

func (e *Engine) invalidateLocked() {
	e.version.Add(1)
	if e.plans != nil {
		e.plans.Purge()
	}
	e.PurgeMaterializations()
}

// Version returns the access-schema generation counter. It advances on
// AddConstraints, RemoveConstraint and InvalidatePlans — never on tuple
// inserts or deletes, whose index maintenance keeps existing plans valid.
func (e *Engine) Version() uint64 { return e.version.Load() }

// SyncVersion raises the engine's version counter to v (no-op when the
// engine is already at or past it), purging the plan cache if it moved.
// It exists for cluster membership changes: an engine freshly built to
// join a sharded cluster (internal/shard Reshard growth) starts at
// version 0 and must report the cluster's generation, or per-engine
// version lockstep — the operator's consistency probe — would read as
// skew.
func (e *Engine) SyncVersion(v uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.version.Load() >= v {
		return
	}
	e.version.Store(v)
	if e.plans != nil {
		e.plans.Purge()
	}
	e.PurgeMaterializations()
}

// AccessSnapshot returns a consistent copy of the installed access schema.
// The Access field itself is replaced copy-on-write under the engine lock
// by AddConstraints / RemoveConstraint, so concurrent readers (e.g. the
// HTTP front end's /schema endpoint) must go through this accessor rather
// than read the field directly.
func (e *Engine) AccessSnapshot() *access.Schema {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return access.NewSchema(e.acc.Constraints...)
}

// Parse parses a query in the textual rule language.
func (e *Engine) Parse(src string) (ra.Query, error) {
	return parser.Parse(src, e.schema)
}

// Check normalizes q and runs CovChk against the engine's access schema.
func (e *Engine) Check(q ra.Query) (*cover.Result, error) {
	norm, err := ra.Normalize(q, e.schema)
	if err != nil {
		return nil, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return cover.Check(norm, e.schema, e.acc)
}

// Report describes how a query was processed and at what cost.
type Report struct {
	// Covered reports whether the executed query was covered (possibly
	// after rewriting).
	Covered bool
	// Rewritten reports that covered-form rewriting changed the query.
	Rewritten bool
	// RewriteRules lists the rewrite rules that fired.
	RewriteRules []string
	// Bounded reports whether the bounded path (evalQP) ran; false means
	// the conventional fallback (evalDBMS) was used.
	Bounded bool
	// Plan is the bounded plan (nil on the fallback path).
	Plan *plan.Plan
	// Minimized is the access sub-schema used (nil when minimization was
	// off or the fallback ran).
	Minimized *access.Schema
	// Stats is the execution cost.
	Stats exec.Stats
	// CacheHit reports that the compile artifact (coverage verdict,
	// rewrite, minimized schema, plan) came from the plan cache; the
	// analysis latencies below are zero in that case.
	CacheHit bool
	// Materialized reports that the answer was served from an
	// incrementally maintained materialization (internal/ivm) — no plan
	// was executed and Stats is zero.
	Materialized bool
	// CheckTime, PlanTime, MinimizeTime are the analysis latencies
	// (the Exp-2 measurements).
	CheckTime, PlanTime, MinimizeTime time.Duration
	// Version is the engine's access-schema generation the execution ran
	// under, read while the engine lock was held — unlike Engine.Version,
	// it cannot race with a concurrent constraint change.
	Version uint64
}

// compiled is a plan-cache entry: everything Execute derives from a query
// before touching data. Entries are immutable once published — concurrent
// executions share the plan tree read-only.
type compiled struct {
	norm      ra.Query // normalized query, after rewriting when covered via rewrite
	covered   bool
	rewritten bool
	rules     []string
	plan      *plan.Plan     // nil when not covered
	minimized *access.Schema // nil when minimization off or not covered
}

// Execute runs the full pipeline of Fig. 4 on q and returns the answer.
// With opts.Cache, the analysis half of the pipeline (CovChk, rewriting,
// minA, QPlan) runs once per canonical query form and engine version;
// repeats jump straight to plan execution.
func (e *Engine) Execute(q ra.Query, opts Options) (*exec.Table, *Report, error) {
	norm, err := ra.Normalize(q, e.schema)
	if err != nil {
		return nil, nil, err
	}
	return e.ExecuteNormalized(norm, "", opts)
}

// ExecuteNormalized is Execute for callers that already hold the
// normalized form of the query — the sharded router, which normalizes
// once and fans the same form out to several engines. norm must be the
// result of ra.Normalize under the engine's schema, and fp, when
// non-empty, must be ra.FingerprintNormalized(norm) (an empty fp is
// computed on demand); passing anything else corrupts plan-cache
// identity.
func (e *Engine) ExecuteNormalized(norm ra.Query, fp string, opts Options) (*exec.Table, *Report, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()

	var key string
	if opts.Cache && e.plans != nil {
		if fp == "" {
			fp = ra.FingerprintNormalized(norm)
		}
		mgr := e.views.Load()
		if mgr != nil {
			// Materialized fast path: the answer is already maintained
			// under writes, so a hot repeat is a pointer load. Views are
			// purged under the exclusive engine lock on every version
			// bump, so a snapshot served under the shared lock can never
			// outlive the access schema it was built against.
			if t, info, ok := mgr.Serve(viewKey(fp, opts)); ok {
				rep := &Report{CacheHit: true, Materialized: true, Version: e.version.Load()}
				analyzed(info.(*compiled), rep)
				return t, rep, nil
			}
		}
		key = e.cacheKeyLocked(fp, opts)
		if v, hits, ok := e.plans.GetTouch(key); ok {
			c := v.(*compiled)
			t, rep, err := e.runCompiled(c, opts, &Report{CacheHit: true, Version: e.version.Load()})
			if err == nil && mgr != nil {
				vk := viewKey(fp, opts)
				if mgr.ShouldAdmit(vk, hits, float64(rep.Stats.Accessed)+1) {
					e.materialize(mgr, vk, c, t)
				}
			}
			return t, rep, err
		}
	}

	rep := &Report{Version: e.version.Load()}
	c, err := e.compile(norm, opts, rep)
	if err != nil {
		return nil, nil, err
	}
	if key != "" {
		e.plans.Put(key, c)
	}
	return e.runCompiled(c, opts, rep)
}

// cacheKeyLocked renders the plan-cache key for a fingerprint under the
// current engine version and the analysis-shaping options. The version is
// part of the key so entries compiled before a schema or access-schema
// change can never be served after it. Called with e.mu held (shared or
// exclusive).
func (e *Engine) cacheKeyLocked(fp string, opts Options) string {
	return fmt.Sprintf("v%d|m%t|r%t|%s", e.version.Load(), opts.Minimize, opts.Rewrite, fp)
}

// Analyze runs the analysis half of the pipeline on norm — exactly the
// compile ExecuteNormalized would perform under opts, sharing the same
// plan cache — and returns the Report WITHOUT executing anything: the
// coverage verdict (after rewriting), the rewrite trail, the bounded plan
// and minimized schema, the cache-hit flag and the analysis latencies.
// Report.Bounded is set to the coverage verdict, anticipating the bounded
// path a covered execution would take.
//
// The sharded router's residue executor calls it on one shard engine to
// obtain the verdict a full-copy engine would have reported for a
// non-distributable query — sound because compilation is data-independent
// and every engine of a healthy cluster carries the same access schema —
// then evaluates the query by shipping sub-plans instead of owning the
// data. fp follows the ExecuteNormalized contract.
func (e *Engine) Analyze(norm ra.Query, fp string, opts Options) (*Report, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()

	var key string
	if opts.Cache && e.plans != nil {
		if fp == "" {
			fp = ra.FingerprintNormalized(norm)
		}
		key = e.cacheKeyLocked(fp, opts)
		if v, ok := e.plans.Get(key); ok {
			rep := &Report{CacheHit: true, Version: e.version.Load()}
			analyzed(v.(*compiled), rep)
			return rep, nil
		}
	}
	rep := &Report{Version: e.version.Load()}
	c, err := e.compile(norm, opts, rep)
	if err != nil {
		return nil, err
	}
	if key != "" {
		e.plans.Put(key, c)
	}
	analyzed(c, rep)
	return rep, nil
}

// analyzed fills the compile-derived Report fields from a cache entry.
func analyzed(c *compiled, rep *Report) {
	rep.Covered = c.covered
	rep.Rewritten = c.rewritten
	rep.RewriteRules = c.rules
	rep.Plan = c.plan
	rep.Minimized = c.minimized
	rep.Bounded = c.covered
}

// EvalSubtree evaluates one subtree of a normalized query against this
// engine's local slice with the conventional evaluator, returning the
// table, its positional attribute scope and the access cost. It is the
// shard-side half of distributed residue execution: the router decides
// which subtrees are safe to evaluate per shard (internal/shard/route.go)
// and ships them here; no coverage checking applies because the subtree
// is not a whole query.
func (e *Engine) EvalSubtree(q ra.Query) (*exec.Table, []ra.Attr, exec.Stats, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return exec.EvalSubtree(q, e.schema, e.db)
}

// Prewarm runs the analysis half of the pipeline on norm — coverage
// check, rewriting, minimization, plan generation, exactly as Execute
// would under opts — and installs the artifact in the plan cache without
// executing it. It exists for cluster membership changes: an engine
// freshly built to join a sharded cluster starts with a cold cache, and
// compilation is data-independent, so the router can prewarm it from its
// query history before the engine receives traffic. fp must be
// ra.FingerprintNormalized(norm) or empty (computed on demand); a query
// already cached under the current version is left untouched.
func (e *Engine) Prewarm(norm ra.Query, fp string, opts Options) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.plans == nil {
		return nil
	}
	if fp == "" {
		fp = ra.FingerprintNormalized(norm)
	}
	key := e.cacheKeyLocked(fp, opts)
	if _, ok := e.plans.Get(key); ok {
		return nil
	}
	rep := &Report{}
	c, err := e.compile(norm, opts, rep)
	if err != nil {
		return err
	}
	e.plans.Put(key, c)
	return nil
}

// compile runs the analysis pipeline on a normalized query: CovChk,
// covered-form rewriting, access minimization and plan generation. Called
// with e.mu held shared.
func (e *Engine) compile(norm ra.Query, opts Options, rep *Report) (*compiled, error) {
	t0 := time.Now()
	res, err := cover.Check(norm, e.schema, e.acc)
	if err != nil {
		return nil, err
	}
	rep.CheckTime = time.Since(t0)

	c := &compiled{norm: norm}
	if !res.Covered && opts.Rewrite {
		rw, err := rewrite.ToCovered(norm, e.schema, e.acc)
		if err != nil {
			return nil, err
		}
		if rw.Covered {
			c.rewritten = true
			c.rules = rw.Applied
			c.norm = rw.Query
			res, err = cover.Check(rw.Query, e.schema, e.acc)
			if err != nil {
				return nil, err
			}
		}
	}
	c.covered = res.Covered
	if !res.Covered {
		return c, nil
	}

	if opts.Minimize {
		t1 := time.Now()
		am, err := minimize.MinA(res, minimize.DefaultOptions())
		if err != nil {
			return nil, err
		}
		rep.MinimizeTime = time.Since(t1)
		c.minimized = am
		res, err = cover.Check(c.norm, e.schema, am)
		if err != nil {
			return nil, err
		}
		if !res.Covered {
			return nil, fmt.Errorf("core: minimized schema no longer covers the query")
		}
	}

	t2 := time.Now()
	p, err := plan.Build(res)
	if err != nil {
		return nil, err
	}
	rep.PlanTime = time.Since(t2)
	c.plan = p
	return c, nil
}

// runCompiled executes a compile artifact: evalQP over the bounded plan
// for covered queries, evalDBMS over the normalized query otherwise.
func (e *Engine) runCompiled(c *compiled, opts Options, rep *Report) (*exec.Table, *Report, error) {
	rep.Covered = c.covered
	rep.Rewritten = c.rewritten
	rep.RewriteRules = c.rules
	rep.Plan = c.plan
	rep.Minimized = c.minimized

	if !c.covered {
		if !opts.FallbackToBaseline {
			return nil, rep, ErrNotCovered
		}
		table, st, err := exec.RunBaseline(c.norm, e.schema, e.db)
		if err != nil {
			return nil, rep, err
		}
		rep.Stats = st
		return table, rep, nil
	}

	rep.Bounded = true
	var (
		table *exec.Table
		st    exec.Stats
		err   error
	)
	if opts.Parallel {
		table, st, err = exec.RunParallel(c.plan, e.db, opts.Workers)
	} else {
		table, st, err = exec.Run(c.plan, e.db)
	}
	if err != nil {
		return nil, rep, err
	}
	rep.Stats = st
	return table, rep, nil
}

// ExecuteBaseline runs q with the conventional evaluator only (evalDBMS).
func (e *Engine) ExecuteBaseline(q ra.Query) (*exec.Table, exec.Stats, error) {
	norm, err := ra.Normalize(q, e.schema)
	if err != nil {
		return nil, exec.Stats{}, err
	}
	return exec.RunBaseline(norm, e.schema, e.db)
}

// SQL translates q's bounded plan into a SQL query over the index
// relations (Plan2SQL). The query must be covered.
func (e *Engine) SQL(q ra.Query) (string, error) {
	res, err := e.Check(q)
	if err != nil {
		return "", err
	}
	if !res.Covered {
		return "", fmt.Errorf("core: query is not covered; no bounded SQL exists")
	}
	p, err := plan.Build(res)
	if err != nil {
		return "", err
	}
	return sqlgen.ToSQL(p)
}

// Discover mines additional access constraints from the current instance
// (the C1 step) and returns them without installing them.
func (e *Engine) Discover(opts discovery.Options) (*access.Schema, error) {
	return discovery.Discover(e.db, opts)
}

// AddConstraints installs extra constraints, building their indices. The
// access schema is replaced copy-on-write (in-flight cover.Results keep
// their immutable snapshot) and the plan cache is invalidated: plans
// compiled before the change may miss access paths the new constraints
// enable.
func (e *Engine) AddConstraints(cs ...access.Constraint) error {
	for _, c := range cs {
		if err := c.Validate(e.schema); err != nil {
			return err
		}
	}
	if e.wal != nil {
		e.ckmu.RLock()
		defer e.ckmu.RUnlock()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	next := access.NewSchema(e.acc.Constraints...)
	var built []access.Constraint
	for _, c := range cs {
		dup := false
		for _, old := range next.Constraints {
			if old.Key() == c.Key() {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if _, err := e.db.BuildIndex(c); err != nil {
			// Atomic failure: drop the indices built earlier in this batch
			// so no orphan index is left registered (it would be maintained
			// on every write but usable by no plan).
			for _, b := range built {
				e.db.DropIndex(b)
			}
			return err
		}
		built = append(built, c)
		next.Constraints = append(next.Constraints, c)
	}
	if len(built) > 0 {
		e.acc = next
		e.invalidateLocked()
		if e.wal != nil {
			for _, c := range built {
				if _, err := e.wal.Append(wal.Record{Kind: wal.KindAddConstraint, Con: c}); err != nil {
					// The constraint is installed but not logged; the log
					// retains the error and Health reports degraded.
					return err
				}
			}
		}
	}
	return nil
}

// RemoveConstraint uninstalls the constraint with c's key, dropping its
// index and invalidating the plan cache — a cached plan whose fetch steps
// use the dropped index must never be served again. It reports whether the
// constraint was present.
func (e *Engine) RemoveConstraint(c access.Constraint) bool {
	if e.wal != nil {
		e.ckmu.RLock()
		defer e.ckmu.RUnlock()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	kept := make([]access.Constraint, 0, len(e.acc.Constraints))
	found := false
	for _, old := range e.acc.Constraints {
		if old.Key() == c.Key() {
			found = true
			continue
		}
		kept = append(kept, old)
	}
	if !found {
		return false
	}
	// Invalidate before the index disappears so no execution can race a
	// stale plan onto a half-dropped index (executions are excluded by the
	// write lock for the whole critical section anyway).
	e.invalidateLocked()
	e.acc = access.NewSchema(kept...)
	e.db.DropIndex(c)
	if e.wal != nil {
		// Log after apply, still under the engine lock and the checkpoint
		// barrier; an append failure is retained by the log and surfaced
		// through Health.
		_, _ = e.wal.Append(wal.Record{Kind: wal.KindRemoveConstraint, Con: c})
	}
	return true
}

// Insert adds a tuple to the database. Cached plans remain valid: the
// indices I_A are maintained incrementally in O(N_A) time under insertions
// (Proposition 12), so this neither invalidates the plan cache nor blocks
// concurrent executions beyond the store's own write lock.
func (e *Engine) Insert(rel string, t value.Tuple) (bool, error) {
	if e.wal != nil {
		return e.durableWrite(rel, t, false)
	}
	return e.trackedWrite(rel, t, false)
}

// Delete removes a tuple from the database. Like Insert, it keeps every
// cached plan valid via incremental index maintenance.
func (e *Engine) Delete(rel string, t value.Tuple) (bool, error) {
	if e.wal != nil {
		return e.durableWrite(rel, t, true)
	}
	return e.trackedWrite(rel, t, true)
}

// ApplyBatch applies a batch of tuple writes in order under a single store
// lock acquisition (see store.DB.ApplyBatch). In durable mode every op is
// logged before the batch is acknowledged.
func (e *Engine) ApplyBatch(ops []store.TupleOp) error {
	if e.wal != nil {
		return e.durableApplyBatch(ops)
	}
	if len(ops) == 0 {
		return nil
	}
	return e.trackedApplyBatch(ops)
}

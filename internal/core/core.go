// Package core wires the paper's components into the bounded-evaluation
// framework of Section 7 (Fig. 4): offline constraint discovery and index
// building (C1), coverage checking (C2), access minimization (C3), bounded
// plan generation (C4), SQL translation (C5) and execution (C6), with a
// conventional fallback for queries that are not covered.
package core

import (
	"fmt"
	"time"

	"repro/internal/access"
	"repro/internal/cover"
	"repro/internal/discovery"
	"repro/internal/exec"
	"repro/internal/minimize"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/ra"
	"repro/internal/rewrite"
	"repro/internal/sqlgen"
	"repro/internal/store"
)

// Engine is a bounded-evaluation engine bound to a relational schema, an
// access schema with built indices, and a database instance.
type Engine struct {
	Schema ra.Schema
	Access *access.Schema
	DB     *store.DB
}

// Options tunes query processing.
type Options struct {
	// Minimize picks a minimal access sub-schema (minA family) before plan
	// generation, the C3 step. Default on in DefaultOptions.
	Minimize bool
	// Rewrite applies covered-form rewriting (difference guarding,
	// selection pushdown) when the query is not covered as given.
	Rewrite bool
	// FallbackToBaseline executes uncovered queries with the conventional
	// evaluator instead of returning an error.
	FallbackToBaseline bool
}

// DefaultOptions enables the full pipeline.
func DefaultOptions() Options {
	return Options{Minimize: true, Rewrite: true, FallbackToBaseline: true}
}

// NewEngine validates the schemas, builds the indices I_A on db, and
// returns an engine ready to process queries.
func NewEngine(schema ra.Schema, A *access.Schema, db *store.DB) (*Engine, error) {
	if err := A.Validate(schema); err != nil {
		return nil, err
	}
	if db == nil {
		db = store.NewDB(schema)
	}
	if err := db.BuildIndexes(A); err != nil {
		return nil, err
	}
	return &Engine{Schema: schema, Access: A, DB: db}, nil
}

// Parse parses a query in the textual rule language.
func (e *Engine) Parse(src string) (ra.Query, error) {
	return parser.Parse(src, e.Schema)
}

// Check normalizes q and runs CovChk against the engine's access schema.
func (e *Engine) Check(q ra.Query) (*cover.Result, error) {
	norm, err := ra.Normalize(q, e.Schema)
	if err != nil {
		return nil, err
	}
	return cover.Check(norm, e.Schema, e.Access)
}

// Report describes how a query was processed and at what cost.
type Report struct {
	// Covered reports whether the executed query was covered (possibly
	// after rewriting).
	Covered bool
	// Rewritten reports that covered-form rewriting changed the query.
	Rewritten bool
	// RewriteRules lists the rewrite rules that fired.
	RewriteRules []string
	// Bounded reports whether the bounded path (evalQP) ran; false means
	// the conventional fallback (evalDBMS) was used.
	Bounded bool
	// Plan is the bounded plan (nil on the fallback path).
	Plan *plan.Plan
	// Minimized is the access sub-schema used (nil when minimization was
	// off or the fallback ran).
	Minimized *access.Schema
	// Stats is the execution cost.
	Stats exec.Stats
	// CheckTime, PlanTime, MinimizeTime are the analysis latencies
	// (the Exp-2 measurements).
	CheckTime, PlanTime, MinimizeTime time.Duration
}

// Execute runs the full pipeline of Fig. 4 on q and returns the answer.
func (e *Engine) Execute(q ra.Query, opts Options) (*exec.Table, *Report, error) {
	rep := &Report{}
	norm, err := ra.Normalize(q, e.Schema)
	if err != nil {
		return nil, nil, err
	}

	t0 := time.Now()
	res, err := cover.Check(norm, e.Schema, e.Access)
	if err != nil {
		return nil, nil, err
	}
	rep.CheckTime = time.Since(t0)

	if !res.Covered && opts.Rewrite {
		rw, err := rewrite.ToCovered(norm, e.Schema, e.Access)
		if err != nil {
			return nil, nil, err
		}
		if rw.Covered {
			rep.Rewritten = true
			rep.RewriteRules = rw.Applied
			norm = rw.Query
			res, err = cover.Check(norm, e.Schema, e.Access)
			if err != nil {
				return nil, nil, err
			}
		}
	}
	rep.Covered = res.Covered

	if !res.Covered {
		if !opts.FallbackToBaseline {
			return nil, rep, fmt.Errorf("core: query is not covered by the access schema")
		}
		table, st, err := exec.RunBaseline(norm, e.Schema, e.DB)
		if err != nil {
			return nil, rep, err
		}
		rep.Stats = st
		return table, rep, nil
	}

	if opts.Minimize {
		t1 := time.Now()
		am, err := minimize.MinA(res, minimize.DefaultOptions())
		if err != nil {
			return nil, rep, err
		}
		rep.MinimizeTime = time.Since(t1)
		rep.Minimized = am
		res, err = cover.Check(norm, e.Schema, am)
		if err != nil {
			return nil, rep, err
		}
		if !res.Covered {
			return nil, rep, fmt.Errorf("core: minimized schema no longer covers the query")
		}
	}

	t2 := time.Now()
	p, err := plan.Build(res)
	if err != nil {
		return nil, rep, err
	}
	rep.PlanTime = time.Since(t2)
	rep.Plan = p
	rep.Bounded = true

	table, st, err := exec.Run(p, e.DB)
	if err != nil {
		return nil, rep, err
	}
	rep.Stats = st
	return table, rep, nil
}

// ExecuteBaseline runs q with the conventional evaluator only (evalDBMS).
func (e *Engine) ExecuteBaseline(q ra.Query) (*exec.Table, exec.Stats, error) {
	norm, err := ra.Normalize(q, e.Schema)
	if err != nil {
		return nil, exec.Stats{}, err
	}
	return exec.RunBaseline(norm, e.Schema, e.DB)
}

// SQL translates q's bounded plan into a SQL query over the index
// relations (Plan2SQL). The query must be covered.
func (e *Engine) SQL(q ra.Query) (string, error) {
	res, err := e.Check(q)
	if err != nil {
		return "", err
	}
	if !res.Covered {
		return "", fmt.Errorf("core: query is not covered; no bounded SQL exists")
	}
	p, err := plan.Build(res)
	if err != nil {
		return "", err
	}
	return sqlgen.ToSQL(p)
}

// Discover mines additional access constraints from the current instance
// (the C1 step) and returns them without installing them.
func (e *Engine) Discover(opts discovery.Options) (*access.Schema, error) {
	return discovery.Discover(e.DB, opts)
}

// AddConstraints installs extra constraints, building their indices.
func (e *Engine) AddConstraints(cs ...access.Constraint) error {
	for _, c := range cs {
		if err := c.Validate(e.Schema); err != nil {
			return err
		}
	}
	for _, c := range cs {
		dup := false
		for _, old := range e.Access.Constraints {
			if old.Key() == c.Key() {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if _, err := e.DB.BuildIndex(c); err != nil {
			return err
		}
		e.Access.Constraints = append(e.Access.Constraints, c)
	}
	return nil
}

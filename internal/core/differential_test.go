package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/workload"
)

// TestDifferentialTemplates sweeps every workload template through all
// four execution paths — the conventional baseline (evalDBMS), the serial
// bounded plan (exec.Run), the parallel bounded plan (exec.RunParallel)
// and the cached path (plan-cache hit) — and requires identical answers.
func TestDifferentialTemplates(t *testing.T) {
	for _, d := range workload.All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			db, err := d.Gen(0.05, 7)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := NewEngine(d.Schema, d.Access, db)
			if err != nil {
				t.Fatal(err)
			}
			for _, tpl := range d.Templates() {
				tpl := tpl
				t.Run(tpl.Name, func(t *testing.T) {
					q, err := eng.Parse(tpl.Src)
					if err != nil {
						t.Fatal(err)
					}
					want, _, err := eng.ExecuteBaseline(q)
					if err != nil {
						t.Fatal(err)
					}

					serial := DefaultOptions()
					serial.Cache = false
					parallel := serial
					parallel.Parallel = true
					parallel.Workers = 4
					cached := DefaultOptions()

					paths := []struct {
						name string
						opts Options
					}{
						{"run", serial},
						{"runparallel", parallel},
						{"cached-cold", cached},
						{"cached-hot", cached},
					}
					for _, p := range paths {
						table, rep, err := eng.Execute(q, p.opts)
						if err != nil {
							t.Fatalf("%s: %v", p.name, err)
						}
						if rep.Covered != tpl.Covered {
							t.Errorf("%s: covered = %v, template says %v", p.name, rep.Covered, tpl.Covered)
						}
						if p.name == "cached-hot" && !rep.CacheHit {
							t.Errorf("%s: expected a plan-cache hit", p.name)
						}
						if !table.Equal(want) {
							t.Errorf("%s: answer differs from baseline\npath: %s\nbaseline: %s",
								p.name, table.String(), want.String())
						}
					}
				})
			}
		})
	}
}

// TestDifferentialRandomQueries widens the sweep with generator queries:
// whatever the generator emits, all paths must agree.
func TestDifferentialRandomQueries(t *testing.T) {
	d := workload.Airca()
	db, err := d.Gen(0.03, 11)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(d.Schema, d.Access, db)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	p := workload.DefaultQueryParams()
	for i := 0; i < 12; i++ {
		p.Sel = 3 + i%4
		p.Join = i % 3
		p.UniDiff = i % 2
		q, err := d.RandomQuery(p, rng)
		if err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("rand-%d", i)
		t.Run(name, func(t *testing.T) {
			want, _, err := eng.ExecuteBaseline(q)
			if err != nil {
				t.Fatal(err)
			}
			for _, cacheOn := range []bool{false, true, true} {
				opts := DefaultOptions()
				opts.Cache = cacheOn
				table, _, err := eng.Execute(q, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !table.Equal(want) {
					t.Fatalf("cache=%v: differs from baseline", cacheOn)
				}
			}
		})
	}
}

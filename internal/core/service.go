package core

import (
	"repro/internal/access"
	"repro/internal/cache"
	"repro/internal/exec"
	"repro/internal/ra"
	"repro/internal/store"
	"repro/internal/value"
)

// Service is the minimal serving surface of the bounded-evaluation layer:
// everything a front end (internal/server) or a replay harness
// (internal/bench) needs to parse, execute, mutate and observe. A single
// *Engine implements it directly; the sharded router (internal/shard)
// implements it over N engines, so callers serve a cluster and a single
// engine through the same code path.
//
// Implementations must be safe for concurrent use and must preserve the
// serving-layer invariant: Insert and Delete keep cached plans valid
// (Version does not change), while access-schema mutations bump Version
// and invalidate cached plans atomically.
type Service interface {
	// Schema returns the relational schema the service is bound to. The
	// returned map is shared and must be treated as read-only.
	Schema() ra.Schema
	// Parse parses a query in the textual rule language.
	Parse(src string) (ra.Query, error)
	// Execute runs the full pipeline on q and returns the answer.
	Execute(q ra.Query, opts Options) (*exec.Table, *Report, error)
	// Insert adds a tuple, maintaining indices incrementally.
	Insert(rel string, t value.Tuple) (bool, error)
	// Delete removes a tuple, maintaining indices incrementally.
	Delete(rel string, t value.Tuple) (bool, error)
	// AddConstraints installs extra access constraints, building their
	// indices and bumping Version.
	AddConstraints(cs ...access.Constraint) error
	// RemoveConstraint uninstalls a constraint (and its index), bumping
	// Version; it reports whether the constraint was present.
	RemoveConstraint(c access.Constraint) bool
	// AccessSnapshot returns a consistent copy of the installed access
	// schema.
	AccessSnapshot() *access.Schema
	// Version returns the access-schema generation counter.
	Version() uint64
	// CacheStats returns plan-cache counters (aggregated, for a cluster).
	CacheStats() cache.Stats
	// SetPlanCacheCapacity resizes the plan cache(s), dropping entries;
	// capacity <= 0 disables caching.
	SetPlanCacheCapacity(capacity int)
	// DBSize returns |D|, the logical number of stored tuples (counting
	// replicated copies once).
	DBSize() int64
	// IndexEntries returns |I_A|, the logical number of index entries.
	IndexEntries() int64
}

// Engine implements Service.
var _ Service = (*Engine)(nil)

// Schema returns the relational schema the engine is bound to. The
// returned map is shared and must be treated as read-only.
func (e *Engine) Schema() ra.Schema { return e.schema }

// DB returns the underlying database instance. It is exposed for loaders,
// experiments and tests; going around the engine for index topology
// changes requires InvalidatePlans.
func (e *Engine) DB() *store.DB { return e.db }

// DBSize returns |D|: the total number of stored tuples.
func (e *Engine) DBSize() int64 { return e.db.Size() }

// IndexEntries returns |I_A|: the total number of index entries.
func (e *Engine) IndexEntries() int64 { return e.db.IndexEntries() }

// EngineStat is a self-contained observability snapshot of one engine,
// used by /stats aggregation across shards. Label is filled in by the
// aggregator (e.g. "shard/3" or "replica"), not by the engine itself.
type EngineStat struct {
	// Label names the engine within a cluster; empty for a lone engine.
	Label string
	// Queries counts query executions routed to the engine. Engines do not
	// count their own executions; the router that owns them does.
	Queries int64
	// Cache is the engine's plan-cache counter snapshot.
	Cache cache.Stats
	// DBSize and IndexEntries are the engine-local |D| and |I_A|.
	DBSize, IndexEntries int64
	// Version is the engine's access-schema generation.
	Version uint64
}

// Stat returns an observability snapshot of this engine.
func (e *Engine) Stat() EngineStat {
	return EngineStat{
		Cache:        e.CacheStats(),
		DBSize:       e.DBSize(),
		IndexEntries: e.IndexEntries(),
		Version:      e.Version(),
	}
}

package core

import (
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/store"
	"repro/internal/value"
	"repro/internal/workload"
)

// durableTestConfig is a low-churn config for tests: fsync off (the page
// cache survives in-process "crashes"), tiny segments so rolling and
// pruning are exercised.
func durableTestConfig(dir string) DurableConfig {
	cfg := DurableConfig{Dir: dir, CheckpointEvery: -1}
	cfg.WAL.SegmentBytes = 16 << 10
	return cfg
}

// sampleRows returns up to n rows of rel for write-storm material.
func sampleRows(t *testing.T, db *store.DB, rel string, n int) []value.Tuple {
	t.Helper()
	rows, err := db.Rows(rel)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < n {
		n = len(rows)
	}
	out := make([]value.Tuple, n)
	for i := 0; i < n; i++ {
		out[i] = rows[i].Clone()
	}
	return out
}

// assertSameAnswers runs every template of d on both engines and requires
// identical tables.
func assertSameAnswers(t *testing.T, d *workload.Dataset, got, want *Engine) {
	t.Helper()
	opts := DefaultOptions()
	for _, tpl := range d.Templates() {
		q, err := want.Parse(tpl.Src)
		if err != nil {
			t.Fatal(err)
		}
		wt, _, err := want.Execute(q, opts)
		if err != nil {
			t.Fatalf("%s: oracle: %v", tpl.Name, err)
		}
		gt, _, err := got.Execute(q, opts)
		if err != nil {
			t.Fatalf("%s: recovered: %v", tpl.Name, err)
		}
		if !gt.Equal(wt) {
			t.Errorf("%s: recovered answer differs from oracle", tpl.Name)
		}
	}
}

func TestDurableEngineRecoversWritesAndConstraints(t *testing.T) {
	d := workload.Airca()
	dir := t.TempDir()
	db, err := d.Gen(0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := OpenDurable(d.Schema, d.Access, db, durableTestConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: an in-memory engine over an identical seed, receiving the
	// same mutations.
	odb, err := d.Gen(0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := NewEngine(d.Schema, d.Access, odb)
	if err != nil {
		t.Fatal(err)
	}

	rows := sampleRows(t, db, "ontime", 60)
	for i, r := range rows {
		if i%3 == 0 {
			if _, err := eng.Delete("ontime", r); err != nil {
				t.Fatal(err)
			}
			if _, err := oracle.Delete("ontime", r); err != nil {
				t.Fatal(err)
			}
		} else if i%3 == 1 {
			// Delete and re-insert: recovery must preserve op order.
			for _, e2 := range []*Engine{eng, oracle} {
				if _, err := e2.Delete("ontime", r); err != nil {
					t.Fatal(err)
				}
				if _, err := e2.Insert("ontime", r); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	// A batch through the durable batch path.
	batch := []store.TupleOp{
		{Rel: "ontime", T: rows[0], Del: false},
		{Rel: "ontime", T: rows[3], Del: false},
		{Rel: "ontime", T: rows[6], Del: true},
	}
	if err := eng.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := oracle.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	// Constraint churn: add a fresh constraint, remove an existing one.
	extra := access.Constraint{Rel: "ontime", X: []string{"airline"}, Y: []string{"origin"}, N: 150}
	drop := access.Constraint{Rel: "plane", X: nil, Y: []string{"model"}, N: 30}
	if err := eng.AddConstraints(extra); err != nil {
		t.Fatal(err)
	}
	if err := oracle.AddConstraints(extra); err != nil {
		t.Fatal(err)
	}
	if !eng.RemoveConstraint(drop) || !oracle.RemoveConstraint(drop) {
		t.Fatal("constraint to remove was not installed")
	}
	if err := eng.Health(); err != nil {
		t.Fatalf("durable engine degraded: %v", err)
	}
	// Abrupt stop: no Close, no checkpoint since boot.

	rec, err := OpenDurable(d.Schema, nil, nil, durableTestConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.DBSize() != oracle.DBSize() {
		t.Fatalf("recovered |D| = %d, oracle %d", rec.DBSize(), oracle.DBSize())
	}
	wantCons := oracle.AccessSnapshot()
	gotCons := rec.AccessSnapshot()
	wantKeys := map[string]bool{}
	for _, c := range wantCons.Constraints {
		wantKeys[c.Key()] = true
	}
	if len(gotCons.Constraints) != len(wantCons.Constraints) {
		t.Fatalf("recovered ‖A‖ = %d, oracle %d", len(gotCons.Constraints), len(wantCons.Constraints))
	}
	for _, c := range gotCons.Constraints {
		if !wantKeys[c.Key()] {
			t.Errorf("recovered unexpected constraint %v", c)
		}
	}
	if rec.IndexEntries() != oracle.IndexEntries() {
		t.Errorf("recovered |I_A| = %d, oracle %d", rec.IndexEntries(), oracle.IndexEntries())
	}
	assertSameAnswers(t, d, rec, oracle)
}

func TestDurableEngineInitialCheckpointMakesSeedDurable(t *testing.T) {
	d := workload.Airca()
	dir := t.TempDir()
	db, err := d.Gen(0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	seedSize := db.Size()
	eng, err := OpenDurable(d.Schema, d.Access, db, durableTestConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if st, ok := eng.DurabilityStats(); !ok || st.Checkpoints != 1 {
		t.Fatalf("expected one boot checkpoint, stats %+v ok=%v", st, ok)
	}
	// Crash with zero writes: recovery must still find the seed.
	rec, err := OpenDurable(d.Schema, nil, nil, durableTestConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.DBSize() != seedSize {
		t.Fatalf("recovered |D| = %d, want seed %d", rec.DBSize(), seedSize)
	}
}

func TestDurableEngineAutoCheckpoint(t *testing.T) {
	d := workload.Airca()
	dir := t.TempDir()
	db, err := d.Gen(0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := durableTestConfig(dir)
	cfg.CheckpointEvery = 40
	eng, err := OpenDurable(d.Schema, d.Access, db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := sampleRows(t, eng.DB(), "ontime", 100)
	for _, r := range rows {
		if _, err := eng.Delete("ontime", r); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Insert("ontime", r); err != nil {
			t.Fatal(err)
		}
	}
	// The checkpoint runs on a background goroutine; wait for it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, _ := eng.DurabilityStats()
		if st.Checkpoints >= 2 { // boot checkpoint + at least one automatic
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no automatic checkpoint after 200 writes (cadence 40): %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := OpenDurable(d.Schema, nil, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.DBSize() != db.Size() {
		t.Fatalf("recovered |D| = %d, want %d", rec.DBSize(), db.Size())
	}
}

func TestDurableEngineExplicitCheckpointBoundsReplay(t *testing.T) {
	d := workload.Airca()
	dir := t.TempDir()
	db, err := d.Gen(0.01, 9)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := OpenDurable(d.Schema, d.Access, db, durableTestConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	rows := sampleRows(t, eng.DB(), "ontime", 30)
	for _, r := range rows {
		if _, err := eng.Delete("ontime", r); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st, _ := eng.DurabilityStats()
	if st.CheckpointLSN != st.LastLSN {
		t.Fatalf("checkpoint LSN %d, last %d", st.CheckpointLSN, st.LastLSN)
	}
	for _, r := range rows {
		if _, err := eng.Insert("ontime", r); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: crash with a checkpoint mid-history.
	rec, err := OpenDurable(d.Schema, nil, nil, durableTestConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.DBSize() != db.Size() {
		t.Fatalf("recovered |D| = %d, want %d", rec.DBSize(), db.Size())
	}
}

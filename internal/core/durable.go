package core

import (
	"fmt"
	"hash/fnv"

	"repro/internal/access"
	"repro/internal/ra"
	"repro/internal/store"
	"repro/internal/value"
	"repro/internal/wal"
)

// DefaultCheckpointEvery is the checkpoint cadence (in logged records)
// used when DurableConfig.CheckpointEvery is zero. It bounds recovery
// replay to at most this many records on top of a snapshot load.
const DefaultCheckpointEvery = 10000

// DurableConfig configures the durable mode of an engine or a sharded
// router: where the write-ahead log lives, how it syncs, and how often the
// store is checkpointed.
type DurableConfig struct {
	// Dir is the data directory holding log segments and checkpoints.
	Dir string
	// WAL tunes the log (fsync policy, segment size).
	WAL wal.Options
	// CheckpointEvery writes a checkpoint every that many logged records
	// (DefaultCheckpointEvery when zero; negative disables automatic
	// checkpoints — Checkpoint can still be called explicitly).
	CheckpointEvery int64
}

// Every resolves the effective checkpoint cadence: the default when
// CheckpointEvery is zero, disabled (0) when it is negative.
func (c DurableConfig) Every() int64 {
	if c.CheckpointEvery == 0 {
		return DefaultCheckpointEvery
	}
	if c.CheckpointEvery < 0 {
		return 0
	}
	return c.CheckpointEvery
}

// OpenDurable opens (or creates) a durable engine backed by the log in
// cfg.Dir. When the directory holds prior state, db and A are IGNORED in
// favor of recovery: the newest loadable checkpoint is loaded, the log
// suffix past it is replayed, and indices are rebuilt once in O(|D|). On a
// fresh directory the provided db and A are adopted and an initial
// checkpoint is written immediately, so the seed data is durable before
// the first write is acknowledged.
func OpenDurable(schema ra.Schema, A *access.Schema, db *store.DB, cfg DurableConfig) (*Engine, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("core: durable engine needs a data directory")
	}
	rec, err := wal.RecoverDB(cfg.Dir, schema)
	if err != nil {
		return nil, err
	}
	if rec.Found {
		db = rec.DB
		A = access.NewSchema(rec.Constraints...)
	} else if A == nil {
		A = access.NewSchema()
	}
	log, err := wal.Open(cfg.Dir, cfg.WAL)
	if err != nil {
		return nil, err
	}
	eng, err := NewEngine(schema, A, db)
	if err != nil {
		log.Close()
		return nil, err
	}
	eng.wal = log
	eng.ckEvery = cfg.Every()
	if !rec.Found {
		if err := log.WriteCheckpoint(log.LastLSN(), eng.db.Save); err != nil {
			log.Close()
			return nil, err
		}
	}
	return eng, nil
}

// writeStripe picks the write-ordering stripe of a tuple.
func writeStripe(rel string, t value.Tuple) int {
	h := fnv.New32a()
	h.Write([]byte(rel))
	h.Write([]byte{0})
	h.Write([]byte(t.Key()))
	return int(h.Sum32() % 64)
}

// durableWrite is the log-before-acknowledge path of Insert and Delete:
// validate, append to the log, then apply to the store, holding the
// per-tuple stripe lock across both so log order equals apply order for
// any single tuple.
func (e *Engine) durableWrite(rel string, t value.Tuple, del bool) (bool, error) {
	if err := e.validateWrite(rel, t, del); err != nil {
		return false, err
	}
	// The materialization fence is held shared across append+apply+delta
	// like the non-durable path (see trackedWrite); lock order
	// ivmMu → ckmu → stripe → db holds everywhere.
	e.ivmMu.RLock()
	mgr := e.views.Load()
	track := mgr != nil && mgr.Tracks(rel)
	e.ckmu.RLock()
	mu := &e.wstripes[writeStripe(rel, t)]
	mu.Lock()
	_, err := e.wal.Append(wal.Record{Kind: wal.KindTuple, Op: store.TupleOp{Rel: rel, T: t, Del: del}})
	if err != nil {
		mu.Unlock()
		e.ckmu.RUnlock()
		e.ivmMu.RUnlock()
		return false, err
	}
	var changed bool
	if del {
		changed, err = e.db.Delete(rel, t)
	} else {
		changed, err = e.db.Insert(rel, t)
	}
	if track && err == nil && changed {
		mgr.OnWrite([]store.TupleOp{{Rel: rel, T: t, Del: del}})
	}
	mu.Unlock()
	e.ckmu.RUnlock()
	e.ivmMu.RUnlock()
	e.maybeCheckpoint()
	return changed, err
}

// validateWrite front-runs the store's own validation so that an op is
// never logged unless replaying it will succeed: recovery treats a replay
// failure as corruption, so the log must only ever contain applicable ops.
func (e *Engine) validateWrite(rel string, t value.Tuple, del bool) error {
	attrs, ok := e.schema[rel]
	if !ok {
		return fmt.Errorf("store: unknown relation %q", rel)
	}
	if !del && len(t) != len(attrs) {
		return fmt.Errorf("store: %s expects %d values, got %d", rel, len(attrs), len(t))
	}
	return nil
}

// durableApplyBatch logs every op of the batch, then applies it in one
// store lock round. All stripe locks covering the batch are held in
// ascending order across append+apply, preserving per-tuple log/apply
// agreement against concurrent single writes.
func (e *Engine) durableApplyBatch(ops []store.TupleOp) error {
	if len(ops) == 0 {
		return nil
	}
	for _, op := range ops {
		if err := e.validateWrite(op.Rel, op.T, op.Del); err != nil {
			return err
		}
	}
	var stripes [64]bool
	for _, op := range ops {
		stripes[writeStripe(op.Rel, op.T)] = true
	}
	e.ivmMu.RLock()
	defer e.ivmMu.RUnlock()
	mgr := e.views.Load()
	track := false
	if mgr != nil {
		for _, op := range ops {
			if mgr.Tracks(op.Rel) {
				track = true
				break
			}
		}
	}
	e.ckmu.RLock()
	defer e.ckmu.RUnlock()
	for i := range stripes {
		if stripes[i] {
			e.wstripes[i].Lock()
			defer e.wstripes[i].Unlock()
		}
	}
	for _, op := range ops {
		if _, err := e.wal.Append(wal.Record{Kind: wal.KindTuple, Op: op}); err != nil {
			return err
		}
	}
	changed, err := e.db.ApplyBatchReport(ops)
	if track {
		var delta []store.TupleOp
		for i, op := range ops {
			if changed[i] {
				delta = append(delta, op)
			}
		}
		if len(delta) > 0 {
			mgr.OnWrite(delta)
		}
	}
	// Non-blocking: the checkpoint itself runs on a fresh goroutine and
	// waits for this batch's locks to drop.
	e.maybeCheckpoint()
	return err
}

// maybeCheckpoint starts a background checkpoint when the replay debt
// passed the configured cadence and none is already running.
func (e *Engine) maybeCheckpoint() {
	if e.ckEvery <= 0 || e.wal.SinceCheckpoint() < e.ckEvery {
		return
	}
	if !e.ckBusy.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer e.ckBusy.Store(false)
		_ = e.Checkpoint() // failure is retained by the log; Health reports it
	}()
}

// Checkpoint writes a durable, LSN-stamped snapshot of the store and
// prunes log segments it makes dead. The checkpoint barrier (exclusive
// ckmu) is held only to READ the log position: at that instant no durable
// mutation is between append and apply, so the snapshot taken right after
// contains every op at or below the stamped LSN. Concurrent writes during
// the (long) snapshot save only add ops beyond the stamp, which replay
// tolerates. No-op on a non-durable engine.
func (e *Engine) Checkpoint() error {
	if e.wal == nil {
		return nil
	}
	e.ckmu.Lock()
	lsn := e.wal.LastLSN()
	e.ckmu.Unlock()
	return e.wal.WriteCheckpoint(lsn, e.db.Save)
}

// Close flushes and closes the write-ahead log after waiting out in-flight
// durable mutations. Queries remain possible; further writes fail. No-op
// on a non-durable engine.
func (e *Engine) Close() error {
	if e.wal == nil {
		return nil
	}
	e.ckmu.Lock()
	defer e.ckmu.Unlock()
	return e.wal.Close()
}

// Health reports nil while durability is intact. A non-nil error is the
// first append, fsync or checkpoint failure the log hit — from then on
// acknowledged writes may not be durable and the process should be
// restarted (recovery replays the intact prefix). Always nil for a
// non-durable engine.
func (e *Engine) Health() error {
	if e.wal == nil {
		return nil
	}
	return e.wal.Err()
}

// DurabilityStats returns the write-ahead-log counters and ok=true when
// the engine is durable.
func (e *Engine) DurabilityStats() (wal.Stats, bool) {
	if e.wal == nil {
		return wal.Stats{}, false
	}
	return e.wal.Stats(), true
}

// WAL exposes the engine's write-ahead log for read-side consumers: the
// replication stream endpoint tails it and the follower keeps LSN parity
// through it. Nil when the engine is not durable. Callers must not append
// or checkpoint through it while the engine owns the write path — the
// follower is the one exception, and it applies from a single goroutine
// with no other writers.
func (e *Engine) WAL() *wal.Log { return e.wal }

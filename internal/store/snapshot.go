package store

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"repro/internal/access"
	"repro/internal/ra"
	"repro/internal/value"
)

// snapshot is the on-wire form of a database: schema, data and the
// constraints whose indices should be rebuilt on load. Indices themselves
// are not serialized — they are reconstructed in O(|D|), which keeps
// snapshots small and the format independent of index internals.
type snapshot struct {
	Schema      map[string][]string
	Relations   map[string][]value.Tuple
	Constraints []access.Constraint
}

// Save writes the database (schema, tuples, constraint set of the built
// indices) to w in gob format. The shared lock is held for the whole
// encoding, so the image is a consistent cut: no concurrent write can
// interleave between relations, and the index set is read inline rather
// than via Indexes (re-acquiring the lock mid-snapshot would both tear the
// image and deadlock against a queued writer). Constraints are emitted in
// sorted key order so equal databases produce equal constraint lists.
func (db *DB) Save(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	snap := snapshot{
		Schema:    db.Schema,
		Relations: map[string][]value.Tuple{},
	}
	for name, rel := range db.rels {
		rows := make([]value.Tuple, 0, len(rel.rows))
		for _, t := range rel.rows {
			rows = append(rows, t)
		}
		snap.Relations[name] = rows
	}
	keys := make([]string, 0, len(db.indexes))
	for k := range db.indexes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		snap.Constraints = append(snap.Constraints, db.indexes[k].Con)
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// SaveSnapshot writes a snapshot assembled by the caller — a schema, a
// constraint set and the rows of every relation — to w in the same gob
// format Save produces, so LoadSnapshot and recovery treat the two
// interchangeably. It exists for the sharded serving layer, where no
// single store holds the full instance any more: the router gathers each
// relation's rows from the shard that (or shards that) own them and emits
// one logical image. Duplicate tuples within a relation (e.g. copies that
// coexist mid-migration) are deduplicated here, and constraints are
// emitted in sorted key order so equal logical databases produce equal
// snapshots.
func SaveSnapshot(w io.Writer, schema ra.Schema, constraints []access.Constraint, relations map[string][]value.Tuple) error {
	snap := snapshot{
		Schema:    schema,
		Relations: map[string][]value.Tuple{},
	}
	for name, rows := range relations {
		seen := make(map[string]bool, len(rows))
		out := make([]value.Tuple, 0, len(rows))
		for _, t := range rows {
			k := t.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, t)
		}
		snap.Relations[name] = out
	}
	cons := append([]access.Constraint{}, constraints...)
	sort.Slice(cons, func(i, j int) bool { return cons[i].Key() < cons[j].Key() })
	snap.Constraints = cons
	return gob.NewEncoder(w).Encode(&snap)
}

// LoadSnapshot reads a snapshot written by Save and reconstructs the
// database WITHOUT building any indices, returning the recorded constraint
// set for the caller to rebuild later. Recovery uses it to avoid paying
// index construction twice: the write-ahead log suffix is replayed onto the
// bare rows first and indices are built once, in O(|D|), over the final
// instance. A decode failure (truncated or corrupt input) returns a nil DB
// and a wrapped error — never a partially loaded database.
func LoadSnapshot(r io.Reader) (*DB, []access.Constraint, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, nil, fmt.Errorf("store: load snapshot: %w", err)
	}
	db := NewDB(ra.Schema(snap.Schema))
	for name, rows := range snap.Relations {
		if err := db.BulkLoad(name, rows); err != nil {
			return nil, nil, err
		}
	}
	return db, snap.Constraints, nil
}

// Load reads a snapshot written by Save, rebuilding all indices.
func Load(r io.Reader) (*DB, error) {
	db, cons, err := LoadSnapshot(r)
	if err != nil {
		return nil, err
	}
	for _, c := range cons {
		if _, err := db.BuildIndex(c); err != nil {
			return nil, err
		}
	}
	return db, nil
}

package store

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/access"
	"repro/internal/ra"
	"repro/internal/value"
)

// snapshot is the on-wire form of a database: schema, data and the
// constraints whose indices should be rebuilt on load. Indices themselves
// are not serialized — they are reconstructed in O(|D|), which keeps
// snapshots small and the format independent of index internals.
type snapshot struct {
	Schema      map[string][]string
	Relations   map[string][]value.Tuple
	Constraints []access.Constraint
}

// Save writes the database (schema, tuples, constraint set of the built
// indices) to w in gob format.
func (db *DB) Save(w io.Writer) error {
	snap := snapshot{
		Schema:    db.Schema,
		Relations: map[string][]value.Tuple{},
	}
	for name, rel := range db.rels {
		rows := make([]value.Tuple, 0, len(rel.rows))
		for _, t := range rel.rows {
			rows = append(rows, t)
		}
		snap.Relations[name] = rows
	}
	for _, idx := range db.Indexes() {
		snap.Constraints = append(snap.Constraints, idx.Con)
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// Load reads a snapshot written by Save, rebuilding all indices.
func Load(r io.Reader) (*DB, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("store: load snapshot: %w", err)
	}
	db := NewDB(ra.Schema(snap.Schema))
	for name, rows := range snap.Relations {
		if err := db.BulkLoad(name, rows); err != nil {
			return nil, err
		}
	}
	for _, c := range snap.Constraints {
		if _, err := db.BuildIndex(c); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// Package store is the relational storage substrate: an in-memory database
// holding relation instances, the attribute-based indices I_A built for an
// access schema (Section 7), the bounded fetch operation they support, and
// bounded incremental maintenance of ⟨A, I_A⟩ under tuple insertions and
// deletions (Proposition 12). Every data access is counted so experiments
// can report P(D_Q) = |D_Q|/|D| exactly.
package store

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/access"
	"repro/internal/plan"
	"repro/internal/ra"
	"repro/internal/value"
)

// Counter tallies tuple accesses. Fetched counts tuples returned by index
// fetches (the bounded path); Scanned counts tuples read by full scans (the
// conventional path). Counters are atomic so concurrent readers may share a
// DB.
type Counter struct {
	Fetched int64
	Scanned int64
}

// Total returns all tuples accessed.
func (c Counter) Total() int64 { return c.Fetched + c.Scanned }

// DB is an in-memory database instance of a relational schema.
//
// A DB is safe for concurrent use: tuple reads (Scan, Rows, Fetch, Size)
// take a shared lock while mutations (Insert, Delete, index builds and
// drops) take an exclusive one, so any number of bounded-plan executions
// can proceed concurrently with each other and are serialized only against
// writes. Indices are maintained incrementally inside the same critical
// section as the base relation (Proposition 12), so readers never observe
// a relation/index mismatch.
type DB struct {
	Schema  ra.Schema
	mu      sync.RWMutex
	rels    map[string]*Relation
	indexes map[string]*Index
	counter Counter
}

// NewDB creates an empty database for schema s.
func NewDB(s ra.Schema) *DB {
	db := &DB{Schema: s, rels: map[string]*Relation{}, indexes: map[string]*Index{}}
	for name, attrs := range s {
		db.rels[name] = newRelation(name, attrs)
	}
	return db
}

// Relation is one stored relation instance with set semantics.
type Relation struct {
	Name  string
	Attrs []string
	pos   map[string]int
	rows  map[string]value.Tuple
}

func newRelation(name string, attrs []string) *Relation {
	pos := make(map[string]int, len(attrs))
	for i, a := range attrs {
		pos[a] = i
	}
	return &Relation{Name: name, Attrs: attrs, pos: pos, rows: map[string]value.Tuple{}}
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.rows) }

// Positions maps attribute names to column positions.
func (r *Relation) Positions(attrs []string) ([]int, error) {
	out := make([]int, len(attrs))
	for i, a := range attrs {
		p, ok := r.pos[a]
		if !ok {
			return nil, fmt.Errorf("store: relation %s has no attribute %s", r.Name, a)
		}
		out[i] = p
	}
	return out, nil
}

// Rel returns the named relation. The returned handle is a live view: its
// Attrs and Positions are immutable and safe to use concurrently, but Len
// reads the mutable row set and is only meaningful while no writer runs.
func (db *DB) Rel(name string) (*Relation, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.rel(name)
}

// rel is Rel without locking, for use inside critical sections.
func (db *DB) rel(name string) (*Relation, error) {
	r, ok := db.rels[name]
	if !ok {
		return nil, fmt.Errorf("store: unknown relation %q", name)
	}
	return r, nil
}

// Size returns |D|: the total number of stored tuples.
func (db *DB) Size() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var n int64
	for _, r := range db.rels {
		n += int64(len(r.rows))
	}
	return n
}

// Counter returns a snapshot of the access counters.
func (db *DB) Counter() Counter {
	return Counter{
		Fetched: atomic.LoadInt64(&db.counter.Fetched),
		Scanned: atomic.LoadInt64(&db.counter.Scanned),
	}
}

// ResetCounter zeroes the access counters.
func (db *DB) ResetCounter() {
	atomic.StoreInt64(&db.counter.Fetched, 0)
	atomic.StoreInt64(&db.counter.Scanned, 0)
}

// Insert adds tuple t to relation rel, maintaining all indices on rel
// incrementally in O(N_A) time (Proposition 12). Duplicate inserts are
// no-ops. It returns true when the tuple was new.
func (db *DB) Insert(rel string, t value.Tuple) (bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.insertLocked(rel, t)
}

// insertLocked is Insert inside the write critical section.
func (db *DB) insertLocked(rel string, t value.Tuple) (bool, error) {
	r, err := db.rel(rel)
	if err != nil {
		return false, err
	}
	if len(t) != len(r.Attrs) {
		return false, fmt.Errorf("store: %s expects %d values, got %d", rel, len(r.Attrs), len(t))
	}
	key := t.Key()
	if _, ok := r.rows[key]; ok {
		return false, nil
	}
	r.rows[key] = t.Clone()
	for _, idx := range db.indexes {
		if idx.Con.Rel == rel {
			idx.insert(t)
		}
	}
	return true, nil
}

// Delete removes tuple t from relation rel, maintaining indices
// incrementally. It returns true when the tuple existed.
func (db *DB) Delete(rel string, t value.Tuple) (bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.deleteLocked(rel, t)
}

// deleteLocked is Delete inside the write critical section.
func (db *DB) deleteLocked(rel string, t value.Tuple) (bool, error) {
	r, err := db.rel(rel)
	if err != nil {
		return false, err
	}
	key := t.Key()
	if _, ok := r.rows[key]; !ok {
		return false, nil
	}
	delete(r.rows, key)
	for _, idx := range db.indexes {
		if idx.Con.Rel == rel {
			idx.remove(t)
		}
	}
	return true, nil
}

// TupleOp is one tuple write in an ApplyBatch batch.
type TupleOp struct {
	// Rel is the target relation.
	Rel string
	// T is the tuple to insert or delete.
	T value.Tuple
	// Del selects delete (true) or insert (false).
	Del bool
}

// ApplyBatch applies ops in order under a single acquisition of the write
// lock, maintaining every index incrementally exactly like Insert and
// Delete. It exists for batched appliers (the replica apply queue of
// internal/shard) that turn O(writes) lock acquisitions into O(batches):
// one call costs one exclusive lock round regardless of batch size, and
// readers are blocked once per batch instead of once per tuple.
//
// Every op is attempted even after a failure (ops are independent
// per-tuple writes, and a batched applier must converge on the applicable
// suffix); the first error is returned.
func (db *DB) ApplyBatch(ops []TupleOp) error {
	_, err := db.ApplyBatchReport(ops)
	return err
}

// ApplyBatchReport is ApplyBatch plus a per-op changed flag: changed[i]
// reports whether op i actually altered the store (an insert of a present
// tuple and a delete of an absent one are set-semantics no-ops). The
// engine's materialized-view maintenance needs the flags — a no-op write
// must not emit a delta — while plain batched appliers keep the cheaper
// ApplyBatch signature.
func (db *DB) ApplyBatchReport(ops []TupleOp) ([]bool, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	changed := make([]bool, len(ops))
	db.mu.Lock()
	defer db.mu.Unlock()
	var first error
	for i, op := range ops {
		var err error
		if op.Del {
			changed[i], err = db.deleteLocked(op.Rel, op.T)
		} else {
			changed[i], err = db.insertLocked(op.Rel, op.T)
		}
		if err != nil && first == nil {
			first = err
		}
	}
	return changed, first
}

// BulkLoad inserts many tuples into rel.
func (db *DB) BulkLoad(rel string, ts []value.Tuple) error {
	for _, t := range ts {
		if _, err := db.Insert(rel, t); err != nil {
			return err
		}
	}
	return nil
}

// Scan returns all tuples of rel, charging a full-scan access for each —
// the conventional evaluation path.
func (db *DB) Scan(rel string) ([]value.Tuple, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, err := db.rel(rel)
	if err != nil {
		return nil, err
	}
	atomic.AddInt64(&db.counter.Scanned, int64(len(r.rows)))
	out := make([]value.Tuple, 0, len(r.rows))
	for _, t := range r.rows {
		out = append(out, t)
	}
	return out, nil
}

// Has reports whether relation rel currently contains tuple t, without
// charging an access. It is the presence probe the shard rebalancer uses
// to decide, under a write-ordering lock, whether a row snapshot is still
// live at its source before copying it to a new owner.
func (db *DB) Has(rel string, t value.Tuple) (bool, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, err := db.rel(rel)
	if err != nil {
		return false, err
	}
	_, ok := r.rows[t.Key()]
	return ok, nil
}

// Rows returns the tuples of rel without charging accesses (used by
// loaders, validators and tests).
func (db *DB) Rows(rel string) ([]value.Tuple, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, err := db.rel(rel)
	if err != nil {
		return nil, err
	}
	out := make([]value.Tuple, 0, len(r.rows))
	for _, t := range r.rows {
		out = append(out, t)
	}
	return out, nil
}

// --- indices --------------------------------------------------------------

// Index is the attribute-based index for one access constraint: a partial
// table π_{XY}(D_R) hashed on X. Buckets hold distinct XY projections with
// reference counts so deletions maintain them exactly.
type Index struct {
	Con    access.Constraint
	cols   []string // X then Y, de-duplicated (plan.IndexCols layout)
	xpos   []int    // positions of X in the base relation
	cpos   []int    // positions of cols in the base relation
	bucket map[string]map[string]*refRow
	// MaxFan tracks the largest bucket (distinct XY count per X value),
	// i.e. the tightest valid N for this X→Y pair on the current instance.
	MaxFan int
}

type refRow struct {
	t value.Tuple
	n int
}

// BuildIndex constructs the index for constraint c from the current
// instance, in O(|D_R|) time, and registers it for maintenance.
func (db *DB) BuildIndex(c access.Constraint) (*Index, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.buildIndex(c)
}

func (db *DB) buildIndex(c access.Constraint) (*Index, error) {
	if err := c.Validate(db.Schema); err != nil {
		return nil, err
	}
	r, err := db.rel(c.Rel)
	if err != nil {
		return nil, err
	}
	cols := plan.IndexCols(c)
	xpos, err := r.Positions(c.X)
	if err != nil {
		return nil, err
	}
	cpos, err := r.Positions(cols)
	if err != nil {
		return nil, err
	}
	idx := &Index{Con: c, cols: cols, xpos: xpos, cpos: cpos, bucket: map[string]map[string]*refRow{}}
	for _, t := range r.rows {
		idx.insert(t)
	}
	db.indexes[c.Key()] = idx
	return idx, nil
}

// BuildIndexes builds indices for every constraint of A.
func (db *DB) BuildIndexes(A *access.Schema) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, c := range A.Constraints {
		if _, err := db.buildIndex(c); err != nil {
			return err
		}
	}
	return nil
}

// DropIndexes removes all indices (for experiments varying ‖A‖).
func (db *DB) DropIndexes() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.indexes = map[string]*Index{}
}

// DropIndex removes the index of constraint c, reporting whether it
// existed. Plans built against c fail their fetches afterwards; callers
// maintaining a plan cache must invalidate before dropping.
func (db *DB) DropIndex(c access.Constraint) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.indexes[c.Key()]; !ok {
		return false
	}
	delete(db.indexes, c.Key())
	return true
}

// Indexes returns the registered indices sorted by constraint key.
func (db *DB) Indexes() []*Index {
	db.mu.RLock()
	defer db.mu.RUnlock()
	keys := make([]string, 0, len(db.indexes))
	for k := range db.indexes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Index, len(keys))
	for i, k := range keys {
		out[i] = db.indexes[k]
	}
	return out
}

func (idx *Index) insert(t value.Tuple) {
	xk := value.KeyOf(t, idx.xpos)
	proj := t.Project(idx.cpos)
	pk := proj.Key()
	b := idx.bucket[xk]
	if b == nil {
		b = map[string]*refRow{}
		idx.bucket[xk] = b
	}
	if rr, ok := b[pk]; ok {
		rr.n++
	} else {
		b[pk] = &refRow{t: proj, n: 1}
		if len(b) > idx.MaxFan {
			idx.MaxFan = len(b)
		}
	}
}

func (idx *Index) remove(t value.Tuple) {
	xk := value.KeyOf(t, idx.xpos)
	b := idx.bucket[xk]
	if b == nil {
		return
	}
	pk := t.Project(idx.cpos).Key()
	if rr, ok := b[pk]; ok {
		rr.n--
		if rr.n <= 0 {
			delete(b, pk)
			if len(b) == 0 {
				delete(idx.bucket, xk)
			}
		}
	}
}

// Entries returns the number of distinct index entries (the index size
// measure reported in Exp-1(IV)).
func (idx *Index) Entries() int64 {
	var n int64
	for _, b := range idx.bucket {
		n += int64(len(b))
	}
	return n
}

// Cols returns the payload column layout (X then Y, de-duplicated).
func (idx *Index) Cols() []string { return idx.cols }

// IndexEntries sums Entries over all indices: |I_A|.
func (db *DB) IndexEntries() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var n int64
	for _, idx := range db.indexes {
		n += idx.Entries()
	}
	return n
}

// IndexEntriesFor sums Entries over the indices built on relation rel.
// The sharded router uses it to assemble a logical |I_A| without a
// full-copy engine: broadcast relations are counted on one shard,
// partitioned ones summed across the shards that split them.
func (db *DB) IndexEntriesFor(rel string) int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var n int64
	for _, idx := range db.indexes {
		if idx.Con.Rel == rel {
			n += idx.Entries()
		}
	}
	return n
}

// Fetch performs fetch(X ∈ {x}, R, Y) via the index for constraint c:
// it returns the distinct XY projections for the given X value, charging
// one access per returned tuple (at most N). The index must have been
// built. The returned tuples use the plan.IndexCols(c) column layout.
func (db *DB) Fetch(c access.Constraint, xvals value.Tuple) ([]value.Tuple, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	idx, ok := db.indexes[c.Key()]
	if !ok {
		return nil, fmt.Errorf("store: no index for %s", c)
	}
	if len(xvals) != len(c.X) {
		return nil, fmt.Errorf("store: fetch via %s expects %d X values, got %d", c, len(c.X), len(xvals))
	}
	b := idx.bucket[xvals.Key()]
	if len(b) == 0 {
		// Probing an absent key still touches the index once.
		atomic.AddInt64(&db.counter.Fetched, 1)
		return nil, nil
	}
	out := make([]value.Tuple, 0, len(b))
	for _, rr := range b {
		out = append(out, rr.t)
	}
	atomic.AddInt64(&db.counter.Fetched, int64(len(out)))
	return out, nil
}

// FetchBatch performs Fetch for every X tuple in xs under one shared lock,
// invoking emit(i, rows) for each probe in order. The rows slice is reused
// between probes — callers must consume it inside emit. Access accounting
// is identical to len(xs) individual Fetch calls (one charge for an empty
// probe, one per returned tuple otherwise), added once at the end. The
// vectorized fetch operator uses it to amortize lock and key-encoding costs
// over a whole batch of distinct X values.
func (db *DB) FetchBatch(c access.Constraint, xs []value.Tuple, emit func(i int, rows []value.Tuple)) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	idx, ok := db.indexes[c.Key()]
	if !ok {
		return fmt.Errorf("store: no index for %s", c)
	}
	var (
		buf     []byte
		scratch []value.Tuple
		charged int64
	)
	for i, xvals := range xs {
		if len(xvals) != len(c.X) {
			return fmt.Errorf("store: fetch via %s expects %d X values, got %d", c, len(c.X), len(xvals))
		}
		buf = buf[:0]
		for _, v := range xvals {
			buf = value.AppendKey(buf, v)
		}
		b := idx.bucket[string(buf)] // no-alloc map probe
		if len(b) == 0 {
			charged++ // probing an absent key still touches the index once
			emit(i, nil)
			continue
		}
		scratch = scratch[:0]
		for _, rr := range b {
			scratch = append(scratch, rr.t)
		}
		charged += int64(len(scratch))
		emit(i, scratch)
	}
	atomic.AddInt64(&db.counter.Fetched, charged)
	return nil
}

// --- constraint validation & maintenance ----------------------------------

// Satisfies verifies that the current instance satisfies constraint c,
// i.e. every X value has at most N distinct Y projections.
func (db *DB) Satisfies(c access.Constraint) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	idx, ok := db.indexes[c.Key()]
	if !ok {
		var err error
		idx, err = db.buildIndex(c)
		if err != nil {
			return err
		}
	}
	for xk, b := range idx.bucket {
		if len(b) > c.N {
			return fmt.Errorf("store: %s violated: X key %q has %d distinct Y values", c, xk, len(b))
		}
	}
	return nil
}

// SatisfiesAll verifies D ⊨ A.
func (db *DB) SatisfiesAll(A *access.Schema) error {
	for _, c := range A.Constraints {
		if err := db.Satisfies(c); err != nil {
			return err
		}
	}
	return nil
}

// Maintain adjusts the cardinality bounds of A to the current instance:
// constraints whose MaxFan grew beyond N are relaxed to the observed
// fan-out (the paper's "constraints determined by policies and statistics
// are maintained"). It returns the adjusted constraints.
func (db *DB) Maintain(A *access.Schema) []access.Constraint {
	db.mu.Lock()
	defer db.mu.Unlock()
	var adjusted []access.Constraint
	for i, c := range A.Constraints {
		idx, ok := db.indexes[c.Key()]
		if !ok {
			continue
		}
		if idx.MaxFan > c.N {
			A.Constraints[i].N = idx.MaxFan
			idx.Con.N = idx.MaxFan
			adjusted = append(adjusted, A.Constraints[i])
		}
	}
	return adjusted
}

package store

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/access"
	"repro/internal/ra"
	"repro/internal/value"
)

func testSchema() ra.Schema {
	return ra.Schema{"r": {"a", "b", "c"}}
}

func iv(i int) value.Value { return value.NewInt(int64(i)) }

func TestInsertDeleteBasics(t *testing.T) {
	db := NewDB(testSchema())
	tup := value.Tuple{iv(1), iv(2), iv(3)}
	ok, err := db.Insert("r", tup)
	if err != nil || !ok {
		t.Fatalf("insert: %v %v", ok, err)
	}
	if ok, _ := db.Insert("r", tup); ok {
		t.Error("duplicate insert reported as new")
	}
	if db.Size() != 1 {
		t.Errorf("Size = %d", db.Size())
	}
	if ok, _ := db.Delete("r", tup); !ok {
		t.Error("delete of existing tuple failed")
	}
	if ok, _ := db.Delete("r", tup); ok {
		t.Error("delete of absent tuple reported success")
	}
	if db.Size() != 0 {
		t.Errorf("Size after delete = %d", db.Size())
	}
}

func TestInsertErrors(t *testing.T) {
	db := NewDB(testSchema())
	if _, err := db.Insert("zzz", value.Tuple{iv(1)}); err == nil {
		t.Error("insert into unknown relation")
	}
	if _, err := db.Insert("r", value.Tuple{iv(1)}); err == nil {
		t.Error("insert with wrong arity")
	}
}

func TestFetchViaIndex(t *testing.T) {
	db := NewDB(testSchema())
	c := access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b"}, N: 10}
	for i := 0; i < 5; i++ {
		if _, err := db.Insert("r", value.Tuple{iv(1), iv(i), iv(i * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.BuildIndex(c); err != nil {
		t.Fatal(err)
	}
	got, err := db.Fetch(c, value.Tuple{iv(1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Errorf("fetched %d tuples, want 5", len(got))
	}
	// Distinctness of XY projections: duplicate (a,b) with different c
	// counts once.
	if _, err := db.Insert("r", value.Tuple{iv(1), iv(0), iv(999)}); err != nil {
		t.Fatal(err)
	}
	got, _ = db.Fetch(c, value.Tuple{iv(1)})
	if len(got) != 5 {
		t.Errorf("fetched %d distinct XY tuples, want 5", len(got))
	}
	// Absent key: empty result, one probe charged.
	before := db.Counter().Fetched
	got, _ = db.Fetch(c, value.Tuple{iv(42)})
	if len(got) != 0 {
		t.Error("fetch of absent key returned tuples")
	}
	if db.Counter().Fetched != before+1 {
		t.Error("absent-key probe not charged")
	}
}

func TestFetchErrors(t *testing.T) {
	db := NewDB(testSchema())
	c := access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b"}, N: 10}
	if _, err := db.Fetch(c, value.Tuple{iv(1)}); err == nil {
		t.Error("fetch without index should fail")
	}
	if _, err := db.BuildIndex(c); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Fetch(c, value.Tuple{iv(1), iv(2)}); err == nil {
		t.Error("fetch with wrong X arity should fail")
	}
}

func TestEmptyXIndex(t *testing.T) {
	db := NewDB(testSchema())
	c := access.Constraint{Rel: "r", X: nil, Y: []string{"b"}, N: 100}
	for i := 0; i < 4; i++ {
		if _, err := db.Insert("r", value.Tuple{iv(i), iv(i % 2), iv(0)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.BuildIndex(c); err != nil {
		t.Fatal(err)
	}
	got, err := db.Fetch(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 { // distinct b values 0,1
		t.Errorf("∅-fetch returned %d tuples, want 2", len(got))
	}
}

// TestIncrementalMaintenanceMatchesRebuild is the Proposition 12 invariant:
// after any insert/delete sequence, the incrementally maintained index
// equals one built from scratch.
func TestIncrementalMaintenanceMatchesRebuild(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := NewDB(testSchema())
		c := access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b", "c"}, N: 50}
		if _, err := db.BuildIndex(c); err != nil {
			t.Fatal(err)
		}
		var live []value.Tuple
		for op := 0; op < 300; op++ {
			if rng.Intn(3) > 0 || len(live) == 0 {
				tup := value.Tuple{iv(rng.Intn(5)), iv(rng.Intn(5)), iv(rng.Intn(3))}
				ok, err := db.Insert("r", tup)
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					live = append(live, tup)
				}
			} else {
				i := rng.Intn(len(live))
				if _, err := db.Delete("r", live[i]); err != nil {
					t.Fatal(err)
				}
				live = append(live[:i], live[i+1:]...)
			}
		}
		// Rebuild in a fresh DB and compare fetch results on every key.
		fresh := NewDB(testSchema())
		rows, _ := db.Rows("r")
		if err := fresh.BulkLoad("r", rows); err != nil {
			t.Fatal(err)
		}
		if _, err := fresh.BuildIndex(c); err != nil {
			t.Fatal(err)
		}
		for a := 0; a < 5; a++ {
			got, _ := db.Fetch(c, value.Tuple{iv(a)})
			want, _ := fresh.Fetch(c, value.Tuple{iv(a)})
			if value.FormatTuples(got) != value.FormatTuples(want) {
				t.Fatalf("seed %d key %d: incremental index diverged:\n%s\nvs\n%s",
					seed, a, value.FormatTuples(got), value.FormatTuples(want))
			}
		}
	}
}

func TestSatisfies(t *testing.T) {
	db := NewDB(testSchema())
	c := access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b"}, N: 2}
	for i := 0; i < 3; i++ {
		if _, err := db.Insert("r", value.Tuple{iv(1), iv(i), iv(0)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Satisfies(c); err == nil {
		t.Error("violated constraint reported satisfied")
	}
	c2 := access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b"}, N: 3}
	if err := db.Satisfies(c2); err != nil {
		t.Errorf("satisfied constraint rejected: %v", err)
	}
}

func TestMaintainRelaxesN(t *testing.T) {
	db := NewDB(testSchema())
	A := access.NewSchema(access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b"}, N: 1})
	if err := db.BuildIndexes(A); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := db.Insert("r", value.Tuple{iv(1), iv(i), iv(0)}); err != nil {
			t.Fatal(err)
		}
	}
	adjusted := db.Maintain(A)
	if len(adjusted) != 1 {
		t.Fatalf("Maintain adjusted %d constraints", len(adjusted))
	}
	if A.Constraints[0].N != 4 {
		t.Errorf("N relaxed to %d, want 4", A.Constraints[0].N)
	}
	if err := db.SatisfiesAll(A); err != nil {
		t.Errorf("after Maintain: %v", err)
	}
}

func TestScanCountsAccesses(t *testing.T) {
	db := NewDB(testSchema())
	for i := 0; i < 7; i++ {
		if _, err := db.Insert("r", value.Tuple{iv(i), iv(0), iv(0)}); err != nil {
			t.Fatal(err)
		}
	}
	db.ResetCounter()
	if _, err := db.Scan("r"); err != nil {
		t.Fatal(err)
	}
	if got := db.Counter().Scanned; got != 7 {
		t.Errorf("Scanned = %d, want 7", got)
	}
	// Rows does not charge.
	db.ResetCounter()
	if _, err := db.Rows("r"); err != nil {
		t.Fatal(err)
	}
	if db.Counter().Total() != 0 {
		t.Error("Rows charged accesses")
	}
}

func TestIndexEntriesAndCols(t *testing.T) {
	db := NewDB(testSchema())
	c := access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"a", "b"}, N: 10}
	idx, err := db.BuildIndex(c)
	if err != nil {
		t.Fatal(err)
	}
	cols := idx.Cols()
	if len(cols) != 2 || cols[0] != "a" || cols[1] != "b" {
		t.Errorf("index cols = %v (X∪Y dedup)", cols)
	}
	for i := 0; i < 3; i++ {
		if _, err := db.Insert("r", value.Tuple{iv(i), iv(1), iv(0)}); err != nil {
			t.Fatal(err)
		}
	}
	if idx.Entries() != 3 {
		t.Errorf("Entries = %d", idx.Entries())
	}
	if db.IndexEntries() != 3 {
		t.Errorf("IndexEntries = %d", db.IndexEntries())
	}
	if len(db.Indexes()) != 1 {
		t.Error("Indexes() wrong length")
	}
}

func TestMaxFanTracksLargestBucket(t *testing.T) {
	db := NewDB(testSchema())
	c := access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b"}, N: 100}
	idx, _ := db.BuildIndex(c)
	for i := 0; i < 5; i++ {
		db.Insert("r", value.Tuple{iv(1), iv(i), iv(0)}) //nolint:errcheck
	}
	db.Insert("r", value.Tuple{iv(2), iv(0), iv(0)}) //nolint:errcheck
	if idx.MaxFan != 5 {
		t.Errorf("MaxFan = %d, want 5", idx.MaxFan)
	}
}

// TestApplyBatch pins the batched write entry point: ops apply in order
// under one lock round with full incremental index maintenance, a bad op
// reports its error without aborting the applicable suffix, and set
// semantics match Insert/Delete exactly.
func TestApplyBatch(t *testing.T) {
	db := NewDB(testSchema())
	c := access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b"}, N: 100}
	idx, err := db.BuildIndex(c)
	if err != nil {
		t.Fatal(err)
	}
	tup := func(a, b, cc int) value.Tuple { return value.Tuple{iv(a), iv(b), iv(cc)} }
	err = db.ApplyBatch([]TupleOp{
		{Rel: "r", T: tup(1, 10, 0)},            // insert
		{Rel: "r", T: tup(1, 10, 0)},            // duplicate: no-op
		{Rel: "r", T: tup(2, 20, 0)},            // insert
		{Rel: "r", T: tup(1, 10, 0), Del: true}, // delete the first
		{Rel: "zzz", T: tup(0, 0, 0)},           // unknown relation: error
		{Rel: "r", T: tup(3, 30, 0)},            // still applied after the error
		{Rel: "r", T: tup(9, 90, 0), Del: true}, // delete of absent: no-op
	})
	if err == nil || !strings.Contains(err.Error(), "unknown relation") {
		t.Fatalf("ApplyBatch error = %v, want the unknown-relation failure", err)
	}
	if db.Size() != 2 {
		t.Fatalf("Size = %d after batch, want 2", db.Size())
	}
	for _, want := range []struct {
		t  value.Tuple
		ok bool
	}{
		{tup(1, 10, 0), false},
		{tup(2, 20, 0), true},
		{tup(3, 30, 0), true},
	} {
		ok, err := db.Has("r", want.t)
		if err != nil {
			t.Fatal(err)
		}
		if ok != want.ok {
			t.Errorf("Has(%v) = %v, want %v", want.t, ok, want.ok)
		}
	}
	// Indices were maintained inside the same critical section.
	if idx.Entries() != 2 {
		t.Errorf("index entries = %d after batch, want 2", idx.Entries())
	}
	rows, err := db.Fetch(c, value.Tuple{iv(2)})
	if err != nil || len(rows) != 1 {
		t.Fatalf("Fetch after batch: rows=%v err=%v", rows, err)
	}
	if err := db.ApplyBatch(nil); err != nil {
		t.Errorf("empty batch errored: %v", err)
	}
}

// TestApplyBatchReport pins the per-op changed flags the engine's delta
// dispatch filters on: set-semantics no-ops (duplicate inserts, deletes
// of absent tuples) must report false, effective ops true, and failed
// ops false — positionally aligned with the input batch.
func TestApplyBatchReport(t *testing.T) {
	db := NewDB(testSchema())
	tup := func(a, b, cc int) value.Tuple { return value.Tuple{iv(a), iv(b), iv(cc)} }
	changed, err := db.ApplyBatchReport([]TupleOp{
		{Rel: "r", T: tup(1, 10, 0)},            // insert: changed
		{Rel: "r", T: tup(1, 10, 0)},            // duplicate: unchanged
		{Rel: "r", T: tup(1, 10, 0), Del: true}, // delete: changed
		{Rel: "r", T: tup(1, 10, 0), Del: true}, // absent now: unchanged
		{Rel: "zzz", T: tup(0, 0, 0)},           // unknown relation: error, unchanged
		{Rel: "r", T: tup(2, 20, 0)},            // still applied: changed
	})
	if err == nil || !strings.Contains(err.Error(), "unknown relation") {
		t.Fatalf("err = %v, want the unknown-relation failure", err)
	}
	want := []bool{true, false, true, false, false, true}
	if len(changed) != len(want) {
		t.Fatalf("len(changed) = %d, want %d", len(changed), len(want))
	}
	for i := range want {
		if changed[i] != want[i] {
			t.Errorf("changed[%d] = %v, want %v", i, changed[i], want[i])
		}
	}
	if db.Size() != 1 {
		t.Fatalf("Size = %d, want 1", db.Size())
	}
}

package store

import (
	"bytes"
	"testing"

	"repro/internal/access"
	"repro/internal/value"
)

func TestSnapshotRoundTrip(t *testing.T) {
	db := NewDB(testSchema())
	c := access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b"}, N: 10}
	if _, err := db.BuildIndex(c); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := db.Insert("r", value.Tuple{iv(i % 7), iv(i % 5), iv(i)}); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != db.Size() {
		t.Fatalf("size %d after load, want %d", loaded.Size(), db.Size())
	}
	// Same rows.
	a, _ := db.Rows("r")
	b, _ := loaded.Rows("r")
	if value.FormatTuples(a) != value.FormatTuples(b) {
		t.Error("rows differ after round trip")
	}
	// Indices rebuilt: fetch works and agrees.
	for k := 0; k < 7; k++ {
		want, err := db.Fetch(c, value.Tuple{iv(k)})
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Fetch(c, value.Tuple{iv(k)})
		if err != nil {
			t.Fatal(err)
		}
		if value.FormatTuples(got) != value.FormatTuples(want) {
			t.Fatalf("fetch(%d) differs after round trip", k)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSnapshotEmptyDB(t *testing.T) {
	db := NewDB(testSchema())
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != 0 {
		t.Error("empty db not empty after load")
	}
}

package store

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"repro/internal/access"
	"repro/internal/ra"
	"repro/internal/value"
)

func TestSnapshotRoundTrip(t *testing.T) {
	db := NewDB(testSchema())
	c := access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b"}, N: 10}
	if _, err := db.BuildIndex(c); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := db.Insert("r", value.Tuple{iv(i % 7), iv(i % 5), iv(i)}); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != db.Size() {
		t.Fatalf("size %d after load, want %d", loaded.Size(), db.Size())
	}
	// Same rows.
	a, _ := db.Rows("r")
	b, _ := loaded.Rows("r")
	if value.FormatTuples(a) != value.FormatTuples(b) {
		t.Error("rows differ after round trip")
	}
	// Indices rebuilt: fetch works and agrees.
	for k := 0; k < 7; k++ {
		want, err := db.Fetch(c, value.Tuple{iv(k)})
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Fetch(c, value.Tuple{iv(k)})
		if err != nil {
			t.Fatal(err)
		}
		if value.FormatTuples(got) != value.FormatTuples(want) {
			t.Fatalf("fetch(%d) differs after round trip", k)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSnapshotEmptyDB(t *testing.T) {
	db := NewDB(testSchema())
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != 0 {
		t.Error("empty db not empty after load")
	}
}

// fidelityDB builds an instance exercising the gob pitfalls the snapshot
// format must survive: an empty relation alongside populated ones, unicode
// and empty strings, zero and negative integers, explicit Null values, and
// several indices so constraint-set ordering matters.
func fidelityDB(t *testing.T) (*DB, []access.Constraint) {
	t.Helper()
	schema := ra.Schema{
		"r":     {"a", "b", "c"},
		"s":     {"x", "y"},
		"empty": {"e"},
	}
	db := NewDB(schema)
	rows := []value.Tuple{
		{iv(0), iv(-42), value.NewStr("héllo ✓ 世界")},
		{iv(-1), iv(0), value.NewStr("")},
		{value.NewInt(-1 << 62), value.NewInt(1<<62 - 1), value.NewStr("plain")},
		{value.Value{}, iv(7), value.NewStr("null-first-col")},
	}
	for _, r := range rows {
		if _, err := db.Insert("r", r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Insert("s", value.Tuple{value.NewStr("κλειδί"), value.Value{}}); err != nil {
		t.Fatal(err)
	}
	cons := []access.Constraint{
		{Rel: "r", X: []string{"a"}, Y: []string{"b"}, N: 4},
		{Rel: "r", X: []string{"b"}, Y: []string{"c"}, N: 9},
		{Rel: "s", X: nil, Y: []string{"x"}, N: 3},
	}
	for _, c := range cons {
		if _, err := db.BuildIndex(c); err != nil {
			t.Fatal(err)
		}
	}
	return db, cons
}

// equalDBs asserts two databases hold the same rows per relation and the
// same constraint set.
func equalDBs(t *testing.T, a, b *DB) {
	t.Helper()
	for name := range a.Schema {
		ra_, err := a.Rows(name)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Rows(name)
		if err != nil {
			t.Fatalf("relation %q missing after load: %v", name, err)
		}
		if value.FormatTuples(ra_) != value.FormatTuples(rb) {
			t.Errorf("relation %q rows differ", name)
		}
	}
	ia, ib := a.Indexes(), b.Indexes()
	if len(ia) != len(ib) {
		t.Fatalf("constraint count %d after load, want %d", len(ib), len(ia))
	}
	for i := range ia {
		if ia[i].Con.Key() != ib[i].Con.Key() || ia[i].Con.N != ib[i].Con.N {
			t.Errorf("constraint %d: got %v want %v", i, ib[i].Con, ia[i].Con)
		}
	}
}

func TestSnapshotFidelity(t *testing.T) {
	db, _ := fidelityDB(t)
	// Save several times: map iteration order varies between encodings, but
	// every image must load back to the same database (empty relation
	// included, values bit-exact, full constraint set).
	for trial := 0; trial < 5; trial++ {
		var buf bytes.Buffer
		if err := db.Save(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		equalDBs(t, db, loaded)
		if _, err := loaded.Rows("empty"); err != nil {
			t.Errorf("trial %d: empty relation lost: %v", trial, err)
		}
	}
}

func TestSnapshotLoadSnapshotSkipsIndices(t *testing.T) {
	db, cons := fidelityDB(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, got, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Indexes()) != 0 {
		t.Errorf("LoadSnapshot built %d indices, want 0", len(loaded.Indexes()))
	}
	if len(got) != len(cons) {
		t.Fatalf("got %d constraints, want %d", len(got), len(cons))
	}
	if loaded.Size() != db.Size() {
		t.Errorf("size %d, want %d", loaded.Size(), db.Size())
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	db, _ := fidelityDB(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	// Every strict prefix must fail with a wrapped error and a nil DB —
	// never a silently partial database.
	for _, cut := range []int{0, 1, len(whole) / 4, len(whole) / 2, len(whole) - 1} {
		loaded, err := Load(bytes.NewReader(whole[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
		if loaded != nil {
			t.Fatalf("truncation at %d bytes returned a partial DB", cut)
		}
	}
}

// TestSnapshotConcurrentWithWrites is the regression test for the Save
// data race: snapshots must hold the database lock for their whole read,
// so saving concurrently with inserts, deletes and index churn is safe
// (run with -race) and never deadlocks against a queued writer.
func TestSnapshotConcurrentWithWrites(t *testing.T) {
	db := NewDB(testSchema())
	c := access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b"}, N: 50}
	if _, err := db.BuildIndex(c); err != nil {
		t.Fatal(err)
	}
	const (
		writers = 4
		ops     = 300
		saves   = 40
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				tup := value.Tuple{iv(w), iv(i % 17), iv(i)}
				if i%3 == 2 {
					if _, err := db.Delete("r", tup); err != nil {
						t.Error(err)
						return
					}
				} else {
					if _, err := db.Insert("r", tup); err != nil {
						t.Error(err)
						return
					}
				}
				if i%50 == 25 {
					// Index churn: the constraint set read by Save mutates.
					db.DropIndex(c)
					if _, err := db.BuildIndex(c); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < saves; i++ {
			if err := db.Save(io.Discard); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	// A saved image taken after the storm still round-trips.
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != db.Size() {
		t.Errorf("size %d after load, want %d", loaded.Size(), db.Size())
	}
}

package hypergraph

import (
	"fmt"
	"testing"
)

// buildLayered makes a layered hypergraph: w nodes per layer, d layers,
// each node derived from two nodes of the previous layer.
func buildLayered(w, d int) (*Graph, NodeID) {
	g := New()
	r := g.Node("r")
	prev := make([]NodeID, w)
	for i := 0; i < w; i++ {
		prev[i] = g.Node(fmt.Sprintf("l0n%d", i))
		g.AddEdge([]NodeID{r}, prev[i], 1, nil)
	}
	for l := 1; l < d; l++ {
		cur := make([]NodeID, w)
		for i := 0; i < w; i++ {
			cur[i] = g.Node(fmt.Sprintf("l%dn%d", l, i))
			g.AddEdge([]NodeID{prev[i], prev[(i+1)%w]}, cur[i], int64(l), nil)
		}
		prev = cur
	}
	return g, r
}

// BenchmarkDerive measures findHP's forward chaining.
func BenchmarkDerive(b *testing.B) {
	g, r := buildLayered(32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := g.Derive(r)
		if !d.Reached[NodeID(g.NumNodes()-1)] {
			b.Fatal("incomplete derivation")
		}
	}
}

// BenchmarkShortestHyperpaths measures the weighted search used by minADAG.
func BenchmarkShortestHyperpaths(b *testing.B) {
	g, r := buildLayered(32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := g.ShortestHyperpaths(r)
		if c.Dist[NodeID(g.NumNodes()-1)] >= inf {
			b.Fatal("unreachable")
		}
	}
}

// Package hypergraph implements the directed hypergraphs of Section 5.2:
// the ⟨Q,A⟩-hypergraph encodes induced RHS-FDs as hyperedges, hyperpaths
// from the dummy root r encode unit fetching plans (Lemma 7), and weighted
// shortest hyperpaths drive the acyclic access-minimization algorithm
// minADAG (Section 6.2).
package hypergraph

import (
	"container/heap"
	"fmt"
	"math"
	"strings"
)

// NodeID identifies a node of a Graph.
type NodeID int

// Graph is a directed hypergraph: hyperedges have a head set and a single
// tail node, following Ausiello et al. as used by the paper.
type Graph struct {
	labels  []string
	byLabel map[string]NodeID
	Edges   []Edge
	// out[v] lists edges having v in their head.
	out map[NodeID][]int
}

// Edge is a hyperedge (Head, Tail) with a weight and an arbitrary payload
// (the plan generator stores the inducing constraint here).
type Edge struct {
	Head    []NodeID
	Tail    NodeID
	Weight  int64
	Payload any
}

// New returns an empty hypergraph.
func New() *Graph {
	return &Graph{byLabel: map[string]NodeID{}, out: map[NodeID][]int{}}
}

// Node returns the node with the given label, creating it if needed.
func (g *Graph) Node(label string) NodeID {
	if id, ok := g.byLabel[label]; ok {
		return id
	}
	id := NodeID(len(g.labels))
	g.labels = append(g.labels, label)
	g.byLabel[label] = id
	return id
}

// Lookup returns the node for label without creating it.
func (g *Graph) Lookup(label string) (NodeID, bool) {
	id, ok := g.byLabel[label]
	return id, ok
}

// Label returns the label of node id.
func (g *Graph) Label(id NodeID) string { return g.labels[id] }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.labels) }

// AddEdge appends a hyperedge and returns its index.
func (g *Graph) AddEdge(head []NodeID, tail NodeID, weight int64, payload any) int {
	idx := len(g.Edges)
	g.Edges = append(g.Edges, Edge{Head: head, Tail: tail, Weight: weight, Payload: payload})
	seen := map[NodeID]bool{}
	for _, h := range head {
		if !seen[h] {
			seen[h] = true
			g.out[h] = append(g.out[h], idx)
		}
	}
	return idx
}

// Size returns |H| = Σ_e |head(e)|, the hypergraph size measure of §5.2.
func (g *Graph) Size() int {
	n := 0
	for _, e := range g.Edges {
		n += len(e.Head)
	}
	return n
}

// Derivation is the result of forward chaining from a source node: which
// nodes are derivable and, for each, the hyperedge that first derived it.
// It corresponds to the procedure findHP of algorithm QPlan.
type Derivation struct {
	g *Graph
	// Via[v] is the index of the deriving edge for v, or -1 for the source
	// and for underived nodes (check Reached).
	Via     []int
	Reached []bool
}

// Derive runs forward chaining from source: an edge fires once all its head
// nodes are derived; its tail becomes derived. O(|H|).
func (g *Graph) Derive(source NodeID) *Derivation {
	d := &Derivation{
		g:       g,
		Via:     make([]int, len(g.labels)),
		Reached: make([]bool, len(g.labels)),
	}
	for i := range d.Via {
		d.Via[i] = -1
	}
	need := make([]int, len(g.Edges))
	for i, e := range g.Edges {
		seen := map[NodeID]bool{}
		for _, h := range e.Head {
			if !seen[h] {
				seen[h] = true
				need[i]++
			}
		}
	}
	d.Reached[source] = true
	queue := []NodeID{source}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, ei := range g.out[v] {
			need[ei]--
			if need[ei] == 0 {
				t := g.Edges[ei].Tail
				if !d.Reached[t] {
					d.Reached[t] = true
					d.Via[t] = ei
					queue = append(queue, t)
				}
			}
		}
	}
	return d
}

// Hyperpath extracts a hyperpath from the derivation source to target as an
// ordered, de-duplicated edge sequence e1..ek satisfying the hyperpath
// conditions of Section 5.2. The boolean is false when target is unreachable.
func (d *Derivation) Hyperpath(target NodeID) ([]int, bool) {
	if int(target) >= len(d.Reached) || !d.Reached[target] {
		return nil, false
	}
	var order []int
	inOrder := map[int]bool{}
	var visit func(NodeID)
	visit = func(v NodeID) {
		ei := d.Via[v]
		if ei < 0 || inOrder[ei] {
			return
		}
		// Mark before recursing: Via edges form a DAG over derivation
		// order, so each head node was derived strictly earlier.
		for _, h := range d.g.Edges[ei].Head {
			visit(h)
		}
		if !inOrder[ei] {
			inOrder[ei] = true
			order = append(order, ei)
		}
	}
	visit(target)
	return order, true
}

// Costs holds minimum-weight derivation costs from a source, where the cost
// of deriving a node through edge e is w(e) plus the sum of the costs of
// e's head nodes (the superior-branching/derivation-tree measure; exact on
// the tree-shaped hyperpaths the ⟨Q,A⟩-hypergraph produces).
type Costs struct {
	Dist []int64
	Via  []int
}

const inf = math.MaxInt64 / 4

// ShortestHyperpaths computes minimum-cost derivations from source using a
// Dijkstra-style algorithm: an edge relaxes once all head nodes are
// finalized. Weights must be non-negative.
func (g *Graph) ShortestHyperpaths(source NodeID) *Costs {
	c := &Costs{
		Dist: make([]int64, len(g.labels)),
		Via:  make([]int, len(g.labels)),
	}
	for i := range c.Dist {
		c.Dist[i] = inf
		c.Via[i] = -1
	}
	c.Dist[source] = 0

	need := make([]int, len(g.Edges))
	headCost := make([]int64, len(g.Edges))
	for i, e := range g.Edges {
		seen := map[NodeID]bool{}
		for _, h := range e.Head {
			if !seen[h] {
				seen[h] = true
				need[i]++
			}
		}
	}

	pq := &nodeHeap{}
	heap.Push(pq, nodeDist{source, 0})
	done := make([]bool, len(g.labels))
	for pq.Len() > 0 {
		nd := heap.Pop(pq).(nodeDist)
		v := nd.id
		if done[v] || nd.d > c.Dist[v] {
			continue
		}
		done[v] = true
		for _, ei := range g.out[v] {
			need[ei]--
			headCost[ei] += c.Dist[v]
			if need[ei] == 0 {
				e := g.Edges[ei]
				nd := headCost[ei] + e.Weight
				if nd < c.Dist[e.Tail] {
					c.Dist[e.Tail] = nd
					c.Via[e.Tail] = ei
					heap.Push(pq, nodeDist{e.Tail, nd})
				}
			}
		}
	}
	return c
}

// HyperpathEdges extracts the edge set of the minimum-cost derivation of
// target recorded in c, in firing order.
func (c *Costs) HyperpathEdges(g *Graph, target NodeID) ([]int, bool) {
	if c.Dist[target] >= inf {
		return nil, false
	}
	var order []int
	inOrder := map[int]bool{}
	visited := map[NodeID]bool{}
	var visit func(NodeID)
	visit = func(v NodeID) {
		if visited[v] {
			return
		}
		visited[v] = true
		ei := c.Via[v]
		if ei < 0 {
			return
		}
		for _, h := range g.Edges[ei].Head {
			visit(h)
		}
		if !inOrder[ei] {
			inOrder[ei] = true
			order = append(order, ei)
		}
	}
	visit(target)
	return order, true
}

// Acyclic reports whether the derived digraph G (replace each hyperedge
// ({u1..up}, v) by edges ui→v) is acyclic — the "acyclic case" of §6.
func (g *Graph) Acyclic() bool {
	indeg := make([]int, len(g.labels))
	adj := make([][]NodeID, len(g.labels))
	for _, e := range g.Edges {
		for _, h := range e.Head {
			adj[h] = append(adj[h], e.Tail)
			indeg[e.Tail]++
		}
	}
	var queue []NodeID
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, NodeID(i))
		}
	}
	seen := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		seen++
		for _, w := range adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	return seen == len(g.labels)
}

// String renders the hypergraph for debugging.
func (g *Graph) String() string {
	var sb strings.Builder
	for i, e := range g.Edges {
		heads := make([]string, len(e.Head))
		for j, h := range e.Head {
			heads[j] = g.labels[h]
		}
		fmt.Fprintf(&sb, "e%d: {%s} -> %s (w=%d)\n", i, strings.Join(heads, ","), g.labels[e.Tail], e.Weight)
	}
	return sb.String()
}

type nodeDist struct {
	id NodeID
	d  int64
}

type nodeHeap []nodeDist

func (h nodeHeap) Len() int              { return len(h) }
func (h nodeHeap) Less(i, j int) bool    { return h[i].d < h[j].d }
func (h nodeHeap) Swap(i, j int)         { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)           { *h = append(*h, x.(nodeDist)) }
func (h *nodeHeap) Pop() any             { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h nodeHeap) Peek() (NodeID, int64) { return h[0].id, h[0].d }

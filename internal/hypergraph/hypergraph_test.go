package hypergraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// chain builds r -> a, {a} -> b, {a,b} -> c.
func chain() (*Graph, NodeID, NodeID, NodeID, NodeID) {
	g := New()
	r := g.Node("r")
	a := g.Node("a")
	b := g.Node("b")
	c := g.Node("c")
	g.AddEdge([]NodeID{r}, a, 0, "ra")
	g.AddEdge([]NodeID{a}, b, 5, "ab")
	g.AddEdge([]NodeID{a, b}, c, 2, "abc")
	return g, r, a, b, c
}

func TestNodeDedup(t *testing.T) {
	g := New()
	a1 := g.Node("a")
	a2 := g.Node("a")
	if a1 != a2 {
		t.Error("Node created duplicate")
	}
	if g.NumNodes() != 1 {
		t.Errorf("NumNodes = %d", g.NumNodes())
	}
	if _, ok := g.Lookup("zzz"); ok {
		t.Error("Lookup found nonexistent node")
	}
}

func TestDeriveChain(t *testing.T) {
	g, r, a, b, c := chain()
	d := g.Derive(r)
	for _, n := range []NodeID{r, a, b, c} {
		if !d.Reached[n] {
			t.Errorf("node %s unreachable", g.Label(n))
		}
	}
	if d.Via[r] != -1 {
		t.Error("source Via should be -1")
	}
}

func TestDeriveBlockedWithoutFullHead(t *testing.T) {
	g := New()
	r := g.Node("r")
	a := g.Node("a")
	b := g.Node("b")
	c := g.Node("c")
	g.AddEdge([]NodeID{r}, a, 0, nil)
	g.AddEdge([]NodeID{a, b}, c, 0, nil) // b never derivable
	d := g.Derive(r)
	if d.Reached[c] {
		t.Error("c derived although head {a,b} incomplete")
	}
	if d.Reached[b] {
		t.Error("b should be unreachable")
	}
}

func TestHyperpathValidOrdering(t *testing.T) {
	g, r, _, _, c := chain()
	d := g.Derive(r)
	edges, ok := d.Hyperpath(c)
	if !ok {
		t.Fatal("no hyperpath to c")
	}
	// Hyperpath condition (a): each edge's head ⊆ {r} ∪ earlier tails.
	derived := map[NodeID]bool{r: true}
	for _, ei := range edges {
		e := g.Edges[ei]
		for _, h := range e.Head {
			if !derived[h] {
				t.Fatalf("edge %d fires before head %s derived", ei, g.Label(h))
			}
		}
		derived[e.Tail] = true
	}
	if !derived[c] {
		t.Error("hyperpath does not derive target")
	}
	// Unreachable target.
	ghost := g.Node("ghost")
	if _, ok := d.Hyperpath(ghost); ok {
		t.Error("hyperpath to unreachable node")
	}
	// Trivial hyperpath to the source itself is empty.
	edges, ok = d.Hyperpath(r)
	if !ok || len(edges) != 0 {
		t.Errorf("hyperpath to source = %v, %v", edges, ok)
	}
}

func TestShortestHyperpathsCosts(t *testing.T) {
	g, r, a, b, c := chain()
	costs := g.ShortestHyperpaths(r)
	if costs.Dist[a] != 0 {
		t.Errorf("dist(a) = %d", costs.Dist[a])
	}
	if costs.Dist[b] != 5 {
		t.Errorf("dist(b) = %d", costs.Dist[b])
	}
	// c needs both a (0) and b (5) plus its own weight 2.
	if costs.Dist[c] != 7 {
		t.Errorf("dist(c) = %d, want 7", costs.Dist[c])
	}
}

func TestShortestHyperpathsPicksCheaper(t *testing.T) {
	g := New()
	r := g.Node("r")
	a := g.Node("a")
	cheap := g.AddEdge([]NodeID{r}, a, 1, "cheap")
	g.AddEdge([]NodeID{r}, a, 10, "dear")
	costs := g.ShortestHyperpaths(r)
	if costs.Dist[a] != 1 {
		t.Errorf("dist = %d", costs.Dist[a])
	}
	if costs.Via[a] != cheap {
		t.Error("Via not the cheap edge")
	}
	edges, ok := costs.HyperpathEdges(g, a)
	if !ok || len(edges) != 1 || edges[0] != cheap {
		t.Errorf("HyperpathEdges = %v", edges)
	}
}

func TestHyperpathEdgesUnreachable(t *testing.T) {
	g := New()
	r := g.Node("r")
	x := g.Node("x")
	costs := g.ShortestHyperpaths(r)
	if _, ok := costs.HyperpathEdges(g, x); ok {
		t.Error("edges to unreachable node")
	}
}

func TestAcyclic(t *testing.T) {
	g, _, _, _, _ := chain()
	if !g.Acyclic() {
		t.Error("chain should be acyclic")
	}
	g2 := New()
	a := g2.Node("a")
	b := g2.Node("b")
	g2.AddEdge([]NodeID{a}, b, 0, nil)
	g2.AddEdge([]NodeID{b}, a, 0, nil)
	if g2.Acyclic() {
		t.Error("2-cycle reported acyclic")
	}
}

func TestSize(t *testing.T) {
	g, _, _, _, _ := chain()
	if g.Size() != 4 { // heads: 1 + 1 + 2
		t.Errorf("Size = %d, want 4", g.Size())
	}
}

func TestStringContainsEdges(t *testing.T) {
	g, _, _, _, _ := chain()
	s := g.String()
	if len(s) == 0 {
		t.Error("empty String")
	}
}

// TestDeriveMatchesShortestReachability: a node has finite shortest cost
// iff it is derivable.
func TestDeriveMatchesShortestReachability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		r := g.Node("r")
		n := 2 + rng.Intn(6)
		nodes := []NodeID{r}
		for i := 0; i < n; i++ {
			nodes = append(nodes, g.Node(string(rune('a'+i))))
		}
		for i := 0; i < rng.Intn(12); i++ {
			hs := 1 + rng.Intn(2)
			head := make([]NodeID, hs)
			for j := range head {
				head[j] = nodes[rng.Intn(len(nodes))]
			}
			tail := nodes[1+rng.Intn(n)] // never the root
			g.AddEdge(head, tail, int64(rng.Intn(10)), nil)
		}
		d := g.Derive(r)
		costs := g.ShortestHyperpaths(r)
		for _, v := range nodes {
			reach := d.Reached[v]
			finite := costs.Dist[v] < inf
			if reach != finite {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestHyperpathMinimalityCondition: every edge in an extracted hyperpath is
// needed — it is the Via edge of some node in the path's derivation chain.
func TestHyperpathEdgesAreViaEdges(t *testing.T) {
	g, r, _, _, c := chain()
	d := g.Derive(r)
	edges, _ := d.Hyperpath(c)
	viaSet := map[int]bool{}
	for v := range d.Via {
		if d.Via[v] >= 0 {
			viaSet[d.Via[v]] = true
		}
	}
	for _, ei := range edges {
		if !viaSet[ei] {
			t.Errorf("edge %d in hyperpath is not a Via edge", ei)
		}
	}
}

package value

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"42", NewInt(42)},
		{"-7", NewInt(-7)},
		{"0", NewInt(0)},
		{"'42'", NewStr("42")},
		{`"nyc"`, NewStr("nyc")},
		{"nyc", NewStr("nyc")},
		{"", NewStr("")},
		{"9223372036854775807", NewInt(9223372036854775807)},
	}
	for _, c := range cases {
		if got := Parse(c.in); got != c.want {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestValueEqualAcrossKinds(t *testing.T) {
	if NewInt(5).Equal(NewStr("5")) {
		t.Error("int 5 must not equal string \"5\"")
	}
	if (Value{}).Equal(NewInt(0)) {
		t.Error("null must not equal int 0")
	}
	if !(Value{}).Equal(Value{}) {
		t.Error("null must equal null")
	}
}

func TestValueLessTotalOrder(t *testing.T) {
	vals := []Value{{}, NewInt(-3), NewInt(0), NewInt(9), NewStr(""), NewStr("a"), NewStr("b")}
	for i := range vals {
		for j := range vals {
			li, lj := vals[i].Less(vals[j]), vals[j].Less(vals[i])
			if i == j && (li || lj) {
				t.Errorf("%v < itself", vals[i])
			}
			if i != j && li == lj {
				t.Errorf("ordering not total between %v and %v", vals[i], vals[j])
			}
			if i < j && !li {
				t.Errorf("expected %v < %v", vals[i], vals[j])
			}
		}
	}
}

func TestValueSQL(t *testing.T) {
	if got := NewStr("o'brien").SQL(); got != "'o''brien'" {
		t.Errorf("SQL quoting = %q", got)
	}
	if got := NewInt(-5).SQL(); got != "-5" {
		t.Errorf("int SQL = %q", got)
	}
	if got := (Value{}).SQL(); got != "NULL" {
		t.Errorf("null SQL = %q", got)
	}
}

// TestTupleKeyInjective is the property the whole set-semantics layer
// relies on: distinct tuples have distinct keys.
func TestTupleKeyInjective(t *testing.T) {
	gen := func(r *rand.Rand) Tuple {
		n := r.Intn(4)
		tp := make(Tuple, n)
		for i := range tp {
			switch r.Intn(3) {
			case 0:
				tp[i] = NewInt(int64(r.Intn(5)))
			case 1:
				tp[i] = NewStr(string(rune('a' + r.Intn(3))))
			default:
				tp[i] = Value{}
			}
		}
		return tp
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := gen(r), gen(r)
		if a.Equal(b) {
			return a.Key() == b.Key()
		}
		return a.Key() != b.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTupleKeyAdversarial(t *testing.T) {
	// Values whose string renderings collide must still get distinct keys.
	pairs := [][2]Tuple{
		{{NewStr("1")}, {NewInt(1)}},
		{{NewStr("a|b")}, {NewStr("a"), NewStr("b")}},
		{{NewStr("")}, {Value{}}},
		{{NewStr("s1:")}, {NewStr("s"), NewStr("")}},
		{{NewInt(12), NewInt(3)}, {NewInt(1), NewInt(23)}},
	}
	for _, p := range pairs {
		if p[0].Key() == p[1].Key() {
			t.Errorf("key collision between %v and %v", p[0], p[1])
		}
	}
}

func TestTupleProjectAndClone(t *testing.T) {
	tp := Tuple{NewInt(1), NewStr("x"), NewInt(3)}
	got := tp.Project([]int{2, 0})
	want := Tuple{NewInt(3), NewInt(1)}
	if !got.Equal(want) {
		t.Errorf("Project = %v, want %v", got, want)
	}
	cl := tp.Clone()
	cl[0] = NewInt(99)
	if tp[0] != NewInt(1) {
		t.Error("Clone shares backing storage")
	}
}

func TestKeyOfMatchesProjectKey(t *testing.T) {
	f := func(a, b, c int64) bool {
		tp := Tuple{NewInt(a), NewInt(b), NewInt(c)}
		pos := []int{2, 1}
		return KeyOf(tp, pos) == tp.Project(pos).Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSortTuplesDeterministic(t *testing.T) {
	ts := []Tuple{{NewInt(2)}, {NewInt(1)}, {NewStr("a")}, {}, {NewInt(1), NewInt(0)}}
	SortTuples(ts)
	want := []Tuple{{}, {NewInt(1)}, {NewInt(1), NewInt(0)}, {NewInt(2)}, {NewStr("a")}}
	if !reflect.DeepEqual(ts, want) {
		t.Errorf("SortTuples = %v, want %v", ts, want)
	}
}

func TestFormatTuples(t *testing.T) {
	out := FormatTuples([]Tuple{{NewInt(2)}, {NewInt(1)}})
	if !strings.Contains(out, "(1)") || !strings.Contains(out, "(2)") {
		t.Errorf("FormatTuples = %q", out)
	}
	if strings.Index(out, "(1)") > strings.Index(out, "(2)") {
		t.Error("FormatTuples not sorted")
	}
}

func TestZeroTuple(t *testing.T) {
	var empty Tuple
	if empty.Key() != "" {
		t.Errorf("empty tuple key = %q, want \"\"", empty.Key())
	}
	if empty.String() != "()" {
		t.Errorf("empty tuple string = %q", empty.String())
	}
}

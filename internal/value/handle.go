package value

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Handle is an 8-byte, kind-tagged encoding of a Value relative to an
// Interner: the two top bits carry the kind, the low 62 bits carry the
// payload — the integer itself for small ints, an id into the interner's
// string or big-integer table otherwise. Two handles produced by the same
// interner are equal exactly when the values they encode are equal, so the
// batched executor (internal/exec) compares, hashes and moves handles
// instead of re-encoding tuples into key strings.
type Handle uint64

const (
	handleTagShift        = 62
	handleTagNull  uint64 = 0
	handleTagInt   uint64 = 1
	handleTagStr   uint64 = 2
	handleTagBig   uint64 = 3
	handlePayload         = uint64(1)<<handleTagShift - 1
)

// NullHandle encodes the Null value in every interner.
const NullHandle Handle = 0

// IsNull reports whether h encodes the Null value.
func (h Handle) IsNull() bool { return h == 0 }

// fitsInline reports whether i can be carried in the 62-bit two's
// complement payload of an Int handle.
func fitsInline(i int64) bool { return (i<<2)>>2 == i }

// IntHandle returns the handle of an Int value when it fits the inline
// 62-bit payload, without touching any interner state. The second result
// is false for the rare ints that need the interner's overflow table.
func IntHandle(i int64) (Handle, bool) {
	if !fitsInline(i) {
		return 0, false
	}
	return Handle(handleTagInt<<handleTagShift | uint64(i)&handlePayload), true
}

// Interner assigns Handles to Values. Strings (and the rare integers that
// do not fit the inline payload) are interned into append-only tables, so
// a value in flight is an 8-byte handle and equality is one integer
// comparison. An Interner is built and filled by one goroutine; once
// construction is done, any number of goroutines may Decode and
// LookupHandle concurrently (the first lookup builds the reverse maps
// under an internal lock when they were dropped by CloneTables).
type Interner struct {
	strs []string
	bigs []int64

	// mu guards the build of the reverse maps, mapsOK publishes it; after
	// the maps exist they are only read (interning is construction-only).
	mu     sync.Mutex
	mapsOK atomic.Bool
	strID  map[string]uint32
	bigID  map[int64]uint32
}

// NewInterner returns an empty interner ready for interning.
func NewInterner() *Interner {
	in := &Interner{strID: map[string]uint32{}}
	in.mapsOK.Store(true)
	return in
}

// Reset clears the interner for reuse, retaining its allocated capacity.
func (in *Interner) Reset() {
	in.strs = in.strs[:0]
	in.bigs = in.bigs[:0]
	if in.strID == nil {
		in.strID = map[string]uint32{}
	} else {
		clear(in.strID)
	}
	if in.bigID != nil {
		clear(in.bigID)
	}
	in.mapsOK.Store(true)
}

// CloneTables returns a detached copy of the interner's decode tables: the
// clone resolves every handle the source had issued, shares no mutable
// state with it, and rebuilds its reverse lookup maps lazily on first use.
// The batched executor uses it to hand a result table its own interner
// while the request arena (and its interner) go back to the pool.
func (in *Interner) CloneTables() *Interner {
	out := &Interner{}
	if len(in.strs) > 0 {
		out.strs = append(make([]string, 0, len(in.strs)), in.strs...)
	}
	if len(in.bigs) > 0 {
		out.bigs = append(make([]int64, 0, len(in.bigs)), in.bigs...)
	}
	return out
}

// ensureMaps rebuilds the reverse lookup maps after CloneTables dropped
// them. Safe to call concurrently; reads after it returns are lock-free.
func (in *Interner) ensureMaps() {
	if in.mapsOK.Load() {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.mapsOK.Load() {
		return
	}
	m := make(map[string]uint32, len(in.strs))
	for i, s := range in.strs {
		m[s] = uint32(i)
	}
	if len(in.bigs) > 0 {
		bm := make(map[int64]uint32, len(in.bigs))
		for i, b := range in.bigs {
			bm[b] = uint32(i)
		}
		in.bigID = bm
	}
	in.strID = m
	in.mapsOK.Store(true)
}

// Intern returns the handle of v, extending the tables as needed. It must
// only be called by the goroutine constructing the interner (or under an
// external lock — see the batched executor's shared-interner mode).
func (in *Interner) Intern(v Value) Handle {
	switch v.K {
	case Int:
		if h, ok := IntHandle(v.I); ok {
			return h
		}
		in.ensureMaps()
		if in.bigID == nil {
			in.bigID = map[int64]uint32{}
		}
		id, ok := in.bigID[v.I]
		if !ok {
			id = uint32(len(in.bigs))
			in.bigs = append(in.bigs, v.I)
			in.bigID[v.I] = id
		}
		return Handle(handleTagBig<<handleTagShift | uint64(id))
	case Str:
		in.ensureMaps()
		id, ok := in.strID[v.S]
		if !ok {
			id = uint32(len(in.strs))
			in.strs = append(in.strs, v.S)
			in.strID[v.S] = id
		}
		return Handle(handleTagStr<<handleTagShift | uint64(id))
	default:
		return NullHandle
	}
}

// LookupHandle returns the handle v would intern to, without extending the
// tables. The second result is false when v was never interned — such a
// value cannot be present in any batch built over this interner.
func (in *Interner) LookupHandle(v Value) (Handle, bool) {
	switch v.K {
	case Int:
		if h, ok := IntHandle(v.I); ok {
			return h, true
		}
		in.ensureMaps()
		if id, ok := in.bigID[v.I]; ok {
			return Handle(handleTagBig<<handleTagShift | uint64(id)), true
		}
		return 0, false
	case Str:
		in.ensureMaps()
		if id, ok := in.strID[v.S]; ok {
			return Handle(handleTagStr<<handleTagShift | uint64(id)), true
		}
		return 0, false
	default:
		return NullHandle, true
	}
}

// Decode returns the Value a handle encodes. Handles must come from this
// interner (or one it was cloned from); anything else panics.
func (in *Interner) Decode(h Handle) Value {
	switch uint64(h) >> handleTagShift {
	case handleTagInt:
		return Value{K: Int, I: int64(uint64(h)<<2) >> 2}
	case handleTagStr:
		return Value{K: Str, S: in.strs[uint64(h)&handlePayload]}
	case handleTagBig:
		return Value{K: Int, I: in.bigs[uint64(h)&handlePayload]}
	default:
		if h != NullHandle {
			panic(fmt.Sprintf("value: malformed handle %#x", uint64(h)))
		}
		return Value{}
	}
}

// MissingHandle is the sentinel Remap substitutes for values the target
// interner has never seen. It is a big-int handle with an all-ones id,
// which a real interner would need 2^62 entries to issue, so it never
// collides with a legitimately issued handle and compares unequal to all
// of them.
const MissingHandle = ^Handle(0)

// Remap translates h from its source interner into the handle space the
// translation tables (from LookupRemap or InternRemap on the source) were
// built for. Inline ints and Null pass through unchanged — their encoding
// is interner-independent.
func (h Handle) Remap(strs, bigs []Handle) Handle {
	switch uint64(h) >> handleTagShift {
	case handleTagStr:
		return strs[uint64(h)&handlePayload]
	case handleTagBig:
		return bigs[uint64(h)&handlePayload]
	default:
		return h
	}
}

// LookupRemap builds per-id translation tables from in's interned strings
// and big ints to dst's handles, without extending dst: values dst has
// never seen map to MissingHandle. It reads dst via LookupHandle only, so
// it is safe on a dst shared by concurrent readers.
func (in *Interner) LookupRemap(dst *Interner) (strs, bigs []Handle) {
	strs = make([]Handle, len(in.strs))
	for i, s := range in.strs {
		h, ok := dst.LookupHandle(Value{K: Str, S: s})
		if !ok {
			h = MissingHandle
		}
		strs[i] = h
	}
	if len(in.bigs) > 0 {
		bigs = make([]Handle, len(in.bigs))
		for i, b := range in.bigs {
			h, ok := dst.LookupHandle(Value{K: Int, I: b})
			if !ok {
				h = MissingHandle
			}
			bigs[i] = h
		}
	}
	return strs, bigs
}

// InternRemap is LookupRemap with interning: values absent from dst are
// added, so every returned handle is valid in dst. dst must be privately
// owned by the caller (interning mutates it).
func (in *Interner) InternRemap(dst *Interner) (strs, bigs []Handle) {
	strs = make([]Handle, len(in.strs))
	for i, s := range in.strs {
		strs[i] = dst.Intern(Value{K: Str, S: s})
	}
	if len(in.bigs) > 0 {
		bigs = make([]Handle, len(in.bigs))
		for i, b := range in.bigs {
			bigs[i] = dst.Intern(Value{K: Int, I: b})
		}
	}
	return strs, bigs
}

// InternTuple appends the handles of t's values to dst and returns it.
func (in *Interner) InternTuple(dst []Handle, t Tuple) []Handle {
	for _, v := range t {
		dst = append(dst, in.Intern(v))
	}
	return dst
}

// Strings returns how many distinct strings the interner holds.
func (in *Interner) Strings() int { return len(in.strs) }

// AppendKey appends the canonical self-delimiting encoding of v — the same
// bytes Tuple.Key produces per value — to dst. The store's batched fetch
// path uses it to build index probe keys in a reusable buffer instead of
// allocating a key string per probe.
func AppendKey(dst []byte, v Value) []byte {
	return v.appendEncoded(dst)
}

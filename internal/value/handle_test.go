package value

import (
	"sync"
	"testing"
)

func TestIntHandleInlineRange(t *testing.T) {
	for _, i := range []int64{0, 1, -1, 42, -42, 1<<61 - 1, -(1 << 61)} {
		h, ok := IntHandle(i)
		if !ok {
			t.Fatalf("IntHandle(%d) should fit the inline payload", i)
		}
		if h.IsNull() {
			t.Fatalf("IntHandle(%d) must not be the null handle", i)
		}
		in := NewInterner()
		if got := in.Decode(h); got != NewInt(i) {
			t.Fatalf("Decode(IntHandle(%d)) = %v", i, got)
		}
	}
	for _, i := range []int64{1 << 61, -(1 << 61) - 1, 1<<63 - 1, -1 << 63} {
		if _, ok := IntHandle(i); ok {
			t.Fatalf("IntHandle(%d) should overflow the inline payload", i)
		}
	}
}

func TestNullHandle(t *testing.T) {
	if !NullHandle.IsNull() {
		t.Fatal("NullHandle must report IsNull")
	}
	in := NewInterner()
	if h := in.Intern(Value{}); h != NullHandle {
		t.Fatalf("interning Null gave %#x", uint64(h))
	}
	if !in.Decode(NullHandle).IsNull() {
		t.Fatal("decoding NullHandle must give the Null value")
	}
	if h, ok := in.LookupHandle(Value{}); !ok || h != NullHandle {
		t.Fatalf("LookupHandle(Null) = %#x, %v", uint64(h), ok)
	}
}

func TestInternRoundTrip(t *testing.T) {
	in := NewInterner()
	vals := []Value{
		NewInt(7),
		NewStr("alpha"),
		NewStr("beta"),
		NewInt(1 << 62), // big int: overflows the inline payload
		NewInt(-(1 << 62)),
		{},
	}
	handles := make([]Handle, len(vals))
	for i, v := range vals {
		handles[i] = in.Intern(v)
	}
	for i, v := range vals {
		if got := in.Decode(handles[i]); got != v {
			t.Fatalf("round trip of %v gave %v", v, got)
		}
		// Interning again must return the identical handle.
		if again := in.Intern(v); again != handles[i] {
			t.Fatalf("re-interning %v gave a different handle", v)
		}
		// And lookup must find it without extending the tables.
		if h, ok := in.LookupHandle(v); !ok || h != handles[i] {
			t.Fatalf("LookupHandle(%v) = %#x, %v", v, uint64(h), ok)
		}
	}
	// Distinct values get distinct handles.
	seen := map[Handle]bool{}
	for _, h := range handles {
		if seen[h] {
			t.Fatalf("handle %#x issued twice", uint64(h))
		}
		seen[h] = true
	}
	if in.Strings() != 2 {
		t.Fatalf("Strings() = %d, want 2", in.Strings())
	}
	if _, ok := in.LookupHandle(NewStr("gamma")); ok {
		t.Fatal("lookup of a never-interned string must miss")
	}
	if _, ok := in.LookupHandle(NewInt(3 << 60)); ok {
		t.Fatal("lookup of a never-interned big int must miss")
	}
}

func TestInternerReset(t *testing.T) {
	in := NewInterner()
	in.Intern(NewStr("alpha"))
	in.Intern(NewInt(1 << 62))
	in.Reset()
	if in.Strings() != 0 {
		t.Fatalf("Strings() after Reset = %d", in.Strings())
	}
	if _, ok := in.LookupHandle(NewStr("alpha")); ok {
		t.Fatal("Reset must drop interned strings")
	}
	if _, ok := in.LookupHandle(NewInt(1 << 62)); ok {
		t.Fatal("Reset must drop interned big ints")
	}
	h := in.Intern(NewStr("beta"))
	if got := in.Decode(h); got != NewStr("beta") {
		t.Fatalf("post-Reset intern round trip gave %v", got)
	}
}

func TestCloneTables(t *testing.T) {
	in := NewInterner()
	hs := in.Intern(NewStr("alpha"))
	hb := in.Intern(NewInt(1 << 62))
	clone := in.CloneTables()
	if got := clone.Decode(hs); got != NewStr("alpha") {
		t.Fatalf("clone decode of string handle gave %v", got)
	}
	if got := clone.Decode(hb); got != NewInt(1<<62) {
		t.Fatalf("clone decode of big-int handle gave %v", got)
	}
	// The clone's reverse maps are rebuilt lazily; lookups must still agree,
	// under concurrency (this is the ensureMaps publication path).
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if h, ok := clone.LookupHandle(NewStr("alpha")); !ok || h != hs {
				t.Errorf("clone LookupHandle(alpha) = %#x, %v", uint64(h), ok)
			}
			if h, ok := clone.LookupHandle(NewInt(1 << 62)); !ok || h != hb {
				t.Errorf("clone LookupHandle(big) = %#x, %v", uint64(h), ok)
			}
		}()
	}
	wg.Wait()
	// Interning into the source after cloning must not leak into the clone.
	in.Intern(NewStr("beta"))
	if _, ok := clone.LookupHandle(NewStr("beta")); ok {
		t.Fatal("clone must not see post-clone interning")
	}
}

func TestRemapFamilies(t *testing.T) {
	src := NewInterner()
	ha := src.Intern(NewStr("alpha"))
	hm := src.Intern(NewStr("missing"))
	hb := src.Intern(NewInt(1 << 62))
	hi := src.Intern(NewInt(5))

	dst := NewInterner()
	dst.Intern(NewStr("padding")) // shift ids so src and dst disagree
	dst.Intern(NewStr("alpha"))
	dst.Intern(NewInt(1 << 62))

	strs, bigs := src.LookupRemap(dst)
	if got := dst.Decode(ha.Remap(strs, bigs)); got != NewStr("alpha") {
		t.Fatalf("remapped alpha decodes to %v", got)
	}
	if h := hm.Remap(strs, bigs); h != MissingHandle {
		t.Fatalf("remap of a value dst never saw gave %#x, want MissingHandle", uint64(h))
	}
	if got := dst.Decode(hb.Remap(strs, bigs)); got != NewInt(1<<62) {
		t.Fatalf("remapped big int decodes to %v", got)
	}
	// Inline ints and Null are interner-independent and pass through.
	if h := hi.Remap(strs, bigs); h != hi {
		t.Fatalf("inline int handle changed under remap: %#x -> %#x", uint64(hi), uint64(h))
	}
	if h := NullHandle.Remap(strs, bigs); h != NullHandle {
		t.Fatalf("null handle changed under remap: %#x", uint64(h))
	}
	// LookupRemap must not have extended dst.
	if _, ok := dst.LookupHandle(NewStr("missing")); ok {
		t.Fatal("LookupRemap extended dst")
	}

	// InternRemap extends dst, so every handle becomes valid.
	strs, bigs = src.LookupRemap(dst) // refresh (unchanged)
	istrs, ibigs := src.InternRemap(dst)
	for i := range strs {
		if strs[i] != MissingHandle && strs[i] != istrs[i] {
			t.Fatalf("InternRemap disagrees with LookupRemap on present string %d", i)
		}
	}
	_ = ibigs
	if got := dst.Decode(hm.Remap(istrs, ibigs)); got != NewStr("missing") {
		t.Fatalf("InternRemap'd handle decodes to %v", got)
	}
}

func TestInternTuple(t *testing.T) {
	in := NewInterner()
	tup := Tuple{NewInt(3), NewStr("alpha"), {}}
	hs := in.InternTuple(nil, tup)
	if len(hs) != len(tup) {
		t.Fatalf("InternTuple returned %d handles for %d values", len(hs), len(tup))
	}
	for i, h := range hs {
		if got := in.Decode(h); got != tup[i] {
			t.Fatalf("handle %d decodes to %v, want %v", i, got, tup[i])
		}
	}
}

func TestAppendKeyMatchesTupleKey(t *testing.T) {
	tup := Tuple{NewInt(-7), NewStr("a|b:c"), {}, NewInt(1 << 62)}
	var buf []byte
	for _, v := range tup {
		buf = AppendKey(buf, v)
	}
	if string(buf) != tup.Key() {
		t.Fatalf("AppendKey concatenation %q differs from Tuple.Key %q", buf, tup.Key())
	}
}

func TestDecodeMalformedHandlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("decoding a malformed null-tagged handle must panic")
		}
	}()
	NewInterner().Decode(Handle(1)) // null tag with nonzero payload
}

// Package value provides the typed scalar values and tuples that flow
// through the relational substrate. Values are small comparable structs so
// they can be used directly as map keys and encoded compactly for row-level
// set semantics.
package value

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind discriminates the scalar types supported by the engine.
type Kind uint8

const (
	// Null is the zero Value; it compares equal only to itself.
	Null Kind = iota
	// Int is a 64-bit signed integer.
	Int
	// Str is a UTF-8 string.
	Str
)

// Value is a scalar constant. The zero Value is Null.
type Value struct {
	K Kind
	I int64
	S string
}

// NewInt returns an Int value.
func NewInt(i int64) Value { return Value{K: Int, I: i} }

// NewStr returns a Str value.
func NewStr(s string) Value { return Value{K: Str, S: s} }

// Parse interprets s as an integer when possible, else as a string constant.
// Surrounding single or double quotes force string interpretation.
func Parse(s string) Value {
	if len(s) >= 2 {
		if (s[0] == '\'' && s[len(s)-1] == '\'') || (s[0] == '"' && s[len(s)-1] == '"') {
			return NewStr(s[1 : len(s)-1])
		}
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return NewInt(i)
	}
	return NewStr(s)
}

// IsNull reports whether v is the Null value.
func (v Value) IsNull() bool { return v.K == Null }

// Equal reports whether v and w are the same value.
// Values of different kinds are never equal.
func (v Value) Equal(w Value) bool { return v == w }

// Less imposes a total order: Null < Int < Str, then by payload.
func (v Value) Less(w Value) bool {
	if v.K != w.K {
		return v.K < w.K
	}
	switch v.K {
	case Int:
		return v.I < w.I
	case Str:
		return v.S < w.S
	default:
		return false
	}
}

// String renders the value for display.
func (v Value) String() string {
	switch v.K {
	case Int:
		return strconv.FormatInt(v.I, 10)
	case Str:
		return v.S
	default:
		return "NULL"
	}
}

// SQL renders the value as a SQL literal.
func (v Value) SQL() string {
	switch v.K {
	case Int:
		return strconv.FormatInt(v.I, 10)
	case Str:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	default:
		return "NULL"
	}
}

// appendEncoded appends a self-delimiting encoding of v to b.
func (v Value) appendEncoded(b []byte) []byte {
	switch v.K {
	case Int:
		b = append(b, 'i')
		b = strconv.AppendInt(b, v.I, 10)
	case Str:
		b = append(b, 's')
		b = strconv.AppendInt(b, int64(len(v.S)), 10)
		b = append(b, ':')
		b = append(b, v.S...)
	default:
		b = append(b, 'n')
	}
	return append(b, '|')
}

// Tuple is an ordered sequence of values, one per column.
type Tuple []Value

// Clone returns a deep copy of t.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Equal reports whether t and u have the same length and values.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string encoding of t usable as a map key.
// Distinct tuples always produce distinct keys.
func (t Tuple) Key() string {
	if len(t) == 0 {
		return ""
	}
	b := make([]byte, 0, len(t)*8)
	for _, v := range t {
		b = v.appendEncoded(b)
	}
	return string(b)
}

// Project returns the tuple of the values at the given positions.
func (t Tuple) Project(pos []int) Tuple {
	out := make(Tuple, len(pos))
	for i, p := range pos {
		out[i] = t[p]
	}
	return out
}

// String renders the tuple as (v1, v2, ...).
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// KeyOf is a convenience helper encoding a subset of columns of t.
func KeyOf(t Tuple, pos []int) string {
	b := make([]byte, 0, len(pos)*8)
	for _, p := range pos {
		b = t[p].appendEncoded(b)
	}
	return string(b)
}

// SortTuples orders tuples lexicographically in place; used for
// deterministic output in tools and tests.
func SortTuples(ts []Tuple) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		for k := 0; k < n; k++ {
			if a[k] != b[k] {
				return a[k].Less(b[k])
			}
		}
		return len(a) < len(b)
	})
}

// FormatTuples renders tuples one per line (sorted), for golden tests.
func FormatTuples(ts []Tuple) string {
	cp := make([]Tuple, len(ts))
	copy(cp, ts)
	SortTuples(cp)
	var sb strings.Builder
	for _, t := range cp {
		fmt.Fprintln(&sb, t.String())
	}
	return sb.String()
}

package wal

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/access"
	"repro/internal/ra"
	"repro/internal/store"
)

// Recovery is the result of replaying a log directory: the reconstructed
// database (rows only — the caller rebuilds indices once, in O(|D|)), the
// constraint set in force at the crash, and the replay bookkeeping the
// operator sees in logs.
type Recovery struct {
	// DB holds the recovered rows; indices are NOT built. Nil when Found
	// is false.
	DB *store.DB
	// Constraints is the access-constraint set in force at the last logged
	// point, sorted by key.
	Constraints []access.Constraint
	// CheckpointLSN is the LSN of the snapshot recovery started from.
	CheckpointLSN uint64
	// LastLSN is the LSN of the last replayed record (CheckpointLSN when
	// the suffix was empty).
	LastLSN uint64
	// Replayed counts log records applied on top of the checkpoint.
	Replayed int
	// Found reports whether dir held any prior state; when false the
	// caller should boot fresh and write an initial checkpoint.
	Found bool
}

// RecoverDB rebuilds database state from dir: it loads the newest loadable
// checkpoint, replays every surviving log record past it in LSN order and
// returns the result. It never modifies dir (torn-tail truncation happens
// in Open); a torn final record is simply not replayed, matching what Open
// will truncate. schema is used only when dir has segments but no
// checkpoint — a state OpenDurable never leaves behind, but recovery
// tolerates it by replaying onto an empty instance.
func RecoverDB(dir string, schema ra.Schema) (*Recovery, error) {
	if !HasState(dir) {
		return &Recovery{}, nil
	}
	db, cons, ckLSN, err := loadLatestCheckpoint(dir)
	if err != nil {
		return nil, err
	}
	if db == nil {
		db = store.NewDB(schema)
	}
	consByKey := map[string]access.Constraint{}
	for _, c := range cons {
		consByKey[c.Key()] = c
	}
	rec := &Recovery{DB: db, CheckpointLSN: ckLSN, LastLSN: ckLSN, Found: true}
	err = Records(dir, ckLSN, func(r Record) error {
		// Unconditional: the very first replayed record must also advance
		// past the checkpoint LSN. Records filters r.LSN ≤ after today, but
		// this guard is the one that makes replay order a checked invariant
		// rather than an assumption about the caller.
		if r.LSN <= rec.LastLSN {
			return fmt.Errorf("wal: recover: LSN %d out of order after %d", r.LSN, rec.LastLSN)
		}
		switch r.Kind {
		case KindTuple:
			var err error
			if r.Op.Del {
				_, err = db.Delete(r.Op.Rel, r.Op.T)
			} else {
				_, err = db.Insert(r.Op.Rel, r.Op.T)
			}
			if err != nil {
				return fmt.Errorf("wal: recover: replaying LSN %d: %w", r.LSN, err)
			}
		case KindAddConstraint:
			consByKey[r.Con.Key()] = r.Con
		case KindRemoveConstraint:
			delete(consByKey, r.Con.Key())
		}
		rec.LastLSN = r.LSN
		rec.Replayed++
		return nil
	})
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(consByKey))
	for k := range consByKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rec.Constraints = make([]access.Constraint, 0, len(keys))
	for _, k := range keys {
		rec.Constraints = append(rec.Constraints, consByKey[k])
	}
	return rec, nil
}

// Records streams every surviving record with LSN greater than after, in
// LSN order. A torn tail in the final segment ends the stream silently
// (those records were never durable); corruption elsewhere is an error.
// It reads the directory as-is and is safe on a crashed, not-yet-opened
// log — the crash-recovery harness uses it to build its oracle.
//
// Segments whose records all fall at or below after are skipped without
// decoding: walking the sorted segment list from the end, the scan starts
// at the last segment whose first LSN is ≤ after+1 (everything before it
// holds only older records). The first LSN comes from the first frame
// header alone — no payload decode — so a tail-read of a multi-segment
// log opens only the final segment.
func Records(dir string, after uint64, fn func(Record) error) error {
	segs, err := listSegments(dir)
	if err != nil {
		return fmt.Errorf("wal: records: %w", err)
	}
	start := 0
	for i := len(segs) - 1; i > 0; i-- {
		first, ok := segmentFirstLSN(segs[i].path)
		if !ok {
			// Empty or torn-at-first-frame segment: the filename is the
			// authoritative first LSN (segments are created as segName(next)).
			first = segs[i].start
		}
		if first <= after+1 {
			start = i
			break
		}
	}
	for i := start; i < len(segs); i++ {
		_, torn, err := scanSegment(segs[i].path, func(r Record) error {
			if r.LSN <= after {
				return nil
			}
			return fn(r)
		})
		if err != nil {
			return err
		}
		if torn && i != len(segs)-1 {
			return fmt.Errorf("wal: records: segment %s is truncated mid-stream but later segments exist", segs[i].path)
		}
	}
	return nil
}

// segmentFirstLSN reads the LSN of path's first record from the first
// frame's header bytes only. ok is false when the segment is empty or its
// first frame is unreadable — callers fall back to the filename LSN.
func segmentFirstLSN(path string) (uint64, bool) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false
	}
	defer f.Close()
	if segmentOpenHook != nil {
		segmentOpenHook(path)
	}
	buf := make([]byte, frameHeaderLen+8)
	if _, err := io.ReadFull(f, buf); err != nil {
		return 0, false
	}
	if n := binary.LittleEndian.Uint32(buf[0:4]); n < bodyPrefixLen || n > maxRecordBytes {
		return 0, false
	}
	return binary.LittleEndian.Uint64(buf[frameHeaderLen : frameHeaderLen+8]), true
}

// loadLatestCheckpoint tries checkpoints newest-first and returns the
// first that decodes, so a checkpoint corrupted on disk falls back to its
// predecessor (whose log suffix is retained for exactly this case). With
// no checkpoint present it returns a nil DB.
func loadLatestCheckpoint(dir string) (*store.DB, []access.Constraint, uint64, error) {
	cks, err := listCheckpoints(dir)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("wal: recover: %w", err)
	}
	var firstErr error
	for i := len(cks) - 1; i >= 0; i-- {
		db, cons, err := readCheckpoint(filepath.Join(dir, ckName(cks[i])), cks[i])
		if err == nil {
			return db, cons, cks[i], nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, nil, 0, fmt.Errorf("wal: recover: no loadable checkpoint: %w", firstErr)
	}
	return nil, nil, 0, nil
}

// readCheckpoint loads one checkpoint file, verifying magic, version and
// that the header LSN matches the filename.
func readCheckpoint(path string, wantLSN uint64) (*store.DB, []access.Constraint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	hdr := make([]byte, ckHeaderLen)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return nil, nil, fmt.Errorf("wal: checkpoint %s: header: %w", path, err)
	}
	if err := checkCheckpointHeader(path, hdr, wantLSN); err != nil {
		return nil, nil, err
	}
	db, cons, err := store.LoadSnapshot(f)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: checkpoint %s: %w", path, err)
	}
	return db, cons, nil
}

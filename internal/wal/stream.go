package wal

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"
)

// This file is the replication-stream half of the log: the frame codec
// shared with the on-disk format, a blocking Tail that follows live
// appends, and the checkpoint install/fetch helpers a follower bootstrap
// uses. The wire format of /wal/stream is exactly the segment format —
// a concatenation of CRC-framed records — so a follower can verify and
// decode the stream with the same code path that reads its own disk.

// KindHeartbeat is a stream-only record kind: an empty-payload frame whose
// LSN field carries the primary's current last LSN. It keeps an idle
// stream's connection alive and lets a caught-up follower track how far
// ahead the primary is. It is never written to disk; Append rejects it.
const KindHeartbeat Kind = 255

// ErrGap reports that a tail asked for records the log has already pruned
// (the requested position predates the oldest retained segment). The only
// recovery is to re-bootstrap from a newer checkpoint.
var ErrGap = errors.New("wal: requested records already pruned")

// EncodeFrame frames rec exactly as Append would write it to a segment:
// [u32 len][u32 crc32c][u64 lsn][u8 kind][payload]. Unlike Append the LSN
// is taken from rec rather than assigned, and KindHeartbeat is allowed
// (with an empty payload). The stream endpoint uses it to re-frame tailed
// records onto the wire.
func EncodeFrame(rec Record) ([]byte, error) {
	body := make([]byte, bodyPrefixLen, bodyPrefixLen+64)
	binary.LittleEndian.PutUint64(body[0:8], rec.LSN)
	body[8] = byte(rec.Kind)
	if rec.Kind != KindHeartbeat {
		var err error
		body, err = appendPayload(body, rec)
		if err != nil {
			return nil, err
		}
	}
	frame := make([]byte, frameHeaderLen+len(body))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(body, castagnoli))
	copy(frame[frameHeaderLen:], body)
	return frame, nil
}

// ReadFrames decodes a concatenation of frames from r (the /wal/stream
// body), invoking fn per record until r is exhausted or fn errors. Unlike
// scanSegment a short or corrupt frame is an error, not a silent tear: a
// TCP stream has no torn-tail excuse, and the caller reconnects on error.
func ReadFrames(r io.Reader, fn func(Record) error) error {
	hdr := make([]byte, frameHeaderLen)
	body := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("wal: stream: %w", err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		if n < bodyPrefixLen || n > maxRecordBytes {
			return fmt.Errorf("wal: stream: frame length %d out of range", n)
		}
		if int64(cap(body)) < int64(n) {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(r, body); err != nil {
			return fmt.Errorf("wal: stream: %w", err)
		}
		if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
			return errors.New("wal: stream: frame checksum mismatch")
		}
		kind := Kind(body[8])
		var rec Record
		if kind == KindHeartbeat {
			if len(body) != bodyPrefixLen {
				return errors.New("wal: stream: heartbeat with payload")
			}
			rec = Record{Kind: KindHeartbeat}
		} else {
			var err error
			rec, err = decodePayload(kind, body[bodyPrefixLen:])
			if err != nil {
				return fmt.Errorf("wal: stream: %w", err)
			}
		}
		rec.LSN = binary.LittleEndian.Uint64(body[0:8])
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// Dir returns the directory the log lives in.
func (l *Log) Dir() string { return l.dir }

// NotifyAppend returns a channel that is closed by the next Append (or by
// Close). Tailers subscribe, re-check LastLSN, and block; the close-and-
// replace discipline makes every append a broadcast without per-waiter
// bookkeeping.
func (l *Log) NotifyAppend() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.notify == nil {
		l.notify = make(chan struct{})
	}
	return l.notify
}

// OldestLSN returns the first LSN of the oldest retained segment — a
// tail can resume from `after` without a gap iff after+1 ≥ this value,
// the same check Tail itself applies before returning ErrGap. ok is
// false only when the log has no segments (never the case once Open
// succeeded).
func (l *Log) OldestLSN() (uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.segs) == 0 {
		return 0, false
	}
	return l.segs[0].start, true
}

// BytesSince returns the total size of segments holding any record with
// LSN greater than lsn — a segment-granularity upper bound on replication
// lag in bytes (partially-acked segments are counted whole).
func (l *Log) BytesSince(lsn uint64) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var n int64
	for i := range l.segs {
		// A segment's records end where the next one starts; a segment
		// wholly at or below lsn contributes nothing. The active (last)
		// segment always counts unless the log is fully acked.
		if i+1 < len(l.segs) && l.segs[i+1].start-1 <= lsn {
			continue
		}
		if i+1 == len(l.segs) && l.lastA.Load() <= lsn {
			continue
		}
		n += l.segs[i].size
	}
	return n
}

// Tail streams every record with LSN greater than after, in order, then
// blocks for live appends until ctx is done. fn sees each record exactly
// once with strictly consecutive LSNs; heartbeat frames (KindHeartbeat,
// LSN = current last LSN) are delivered when the tail has been idle for
// the heartbeat interval (default 1s when ≤ 0). idle, if non-nil, is
// called whenever the tail has drained everything currently in the log
// and is about to block — the stream endpoint flushes its write buffer
// there, so records batch under load but are never held back while idle.
//
// Tail returns ErrGap when after predates the oldest retained segment
// (the caller must re-bootstrap from a checkpoint), ctx.Err() on
// cancellation, or the first error from fn.
func (l *Log) Tail(ctx context.Context, after uint64, heartbeat time.Duration, fn func(Record) error, idle func() error) error {
	if heartbeat <= 0 {
		heartbeat = time.Second
	}
	cur := tailCursor{lsn: after}
	timer := time.NewTimer(heartbeat)
	defer timer.Stop()
	for {
		n, retry, err := l.tailPass(&cur, fn)
		if err != nil {
			return err
		}
		if n > 0 || retry {
			continue
		}
		// Caught up. Subscribe before the LastLSN re-check so an append
		// landing between the check and the select cannot be missed.
		ch := l.NotifyAppend()
		if l.LastLSN() > cur.lsn {
			continue
		}
		if idle != nil {
			if err := idle(); err != nil {
				return err
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(heartbeat)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		case <-timer.C:
			if err := fn(Record{Kind: KindHeartbeat, LSN: l.LastLSN()}); err != nil {
				return err
			}
			if idle != nil {
				if err := idle(); err != nil {
					return err
				}
			}
		}
	}
}

// tailCursor is Tail's resume state: the last delivered LSN plus the byte
// offset reached in the segment scanned last, so following a live log
// re-reads only the active segment's unseen suffix instead of re-decoding
// it from the start on every wakeup.
type tailCursor struct {
	lsn  uint64
	path string
	off  int64
}

// tailPass delivers every record past cur currently on disk, advancing the
// cursor. retry asks the caller to run another pass immediately (a segment
// vanished under us — pruned between listing and open). Reading torn
// frames is fine: a frame mid-write surfaces as a tear, the pass stops
// before it, and the next pass resumes at the same offset.
func (l *Log) tailPass(cur *tailCursor, fn func(Record) error) (delivered int, retry bool, err error) {
	l.mu.Lock()
	segs := make([]segment, len(l.segs))
	copy(segs, l.segs)
	l.mu.Unlock()
	if len(segs) == 0 {
		return 0, false, nil
	}
	if segs[0].start > cur.lsn+1 {
		return 0, false, ErrGap
	}
	start := 0
	for i := len(segs) - 1; i > 0; i-- {
		if segs[i].start <= cur.lsn+1 {
			start = i
			break
		}
	}
	for i := start; i < len(segs); i++ {
		off := int64(0)
		if segs[i].path == cur.path {
			off = cur.off
		}
		valid, _, err := scanSegmentAt(segs[i].path, off, func(r Record) error {
			if r.LSN <= cur.lsn {
				return nil
			}
			if r.LSN != cur.lsn+1 {
				return fmt.Errorf("wal: tail: LSN %d after %d (hole in log)", r.LSN, cur.lsn)
			}
			if err := fn(r); err != nil {
				return err
			}
			cur.lsn = r.LSN
			delivered++
			return nil
		})
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				cur.path, cur.off = "", 0
				return delivered, true, nil
			}
			return delivered, false, err
		}
		cur.path, cur.off = segs[i].path, valid
	}
	return delivered, false, nil
}

// LatestCheckpoint returns the path and LSN of the newest checkpoint in
// dir whose header validates, falling back to older ones exactly like
// recovery does. ok is false when dir holds no usable checkpoint.
func LatestCheckpoint(dir string) (path string, lsn uint64, ok bool, err error) {
	cks, err := listCheckpoints(dir)
	if err != nil {
		return "", 0, false, fmt.Errorf("wal: checkpoints: %w", err)
	}
	for i := len(cks) - 1; i >= 0; i-- {
		p := filepath.Join(dir, ckName(cks[i]))
		if err := validateCheckpointHeader(p, cks[i]); err == nil {
			return p, cks[i], true, nil
		}
	}
	return "", 0, false, nil
}

// validateCheckpointHeader checks magic, version and filename-LSN match
// without decoding the snapshot body.
func validateCheckpointHeader(path string, wantLSN uint64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	hdr := make([]byte, ckHeaderLen)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return fmt.Errorf("wal: checkpoint %s: header: %w", path, err)
	}
	return checkCheckpointHeader(path, hdr, wantLSN)
}

// checkCheckpointHeader validates an in-memory checkpoint header. wantLSN
// < 0 is impossible (unsigned); pass the filename LSN, or the header's own
// LSN to skip the match.
func checkCheckpointHeader(path string, hdr []byte, wantLSN uint64) error {
	if !bytes.Equal(hdr[0:4], ckMagic) {
		return fmt.Errorf("wal: checkpoint %s: bad magic", path)
	}
	if hdr[4] != ckVersion {
		return fmt.Errorf("wal: checkpoint %s: unsupported version %d", path, hdr[4])
	}
	if lsn := binary.LittleEndian.Uint64(hdr[5:13]); lsn != wantLSN {
		return fmt.Errorf("wal: checkpoint %s: header LSN %d does not match filename", path, lsn)
	}
	return nil
}

// InstallCheckpoint writes the checkpoint file streamed in r (a verbatim
// /wal/snapshot body: wal checkpoint header + store snapshot) into dir
// under its canonical name, via tmp+fsync+rename like a locally-written
// checkpoint. It returns the checkpoint's LSN. The caller is responsible
// for only installing into a directory it is prepared to recover from —
// a follower bootstrap uses it on an empty (or deliberately reset) dir.
func InstallCheckpoint(dir string, r io.Reader) (uint64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("wal: install checkpoint: %w", err)
	}
	hdr := make([]byte, ckHeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, fmt.Errorf("wal: install checkpoint: header: %w", err)
	}
	lsn := binary.LittleEndian.Uint64(hdr[5:13])
	if err := checkCheckpointHeader("(stream)", hdr, lsn); err != nil {
		return 0, err
	}
	final := filepath.Join(dir, ckName(lsn))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("wal: install checkpoint: %w", err)
	}
	defer os.Remove(tmp) // no-op after successful rename
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return 0, fmt.Errorf("wal: install checkpoint: %w", err)
	}
	if _, err := io.Copy(f, r); err != nil {
		f.Close()
		return 0, fmt.Errorf("wal: install checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, fmt.Errorf("wal: install checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("wal: install checkpoint: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return 0, fmt.Errorf("wal: install checkpoint: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return 0, fmt.Errorf("wal: install checkpoint: %w", err)
	}
	return lsn, nil
}

// Package wal is the durability layer: a segmented, CRC32C-framed
// write-ahead log of tuple writes and access-constraint changes, plus
// LSN-stamped checkpoints of the store snapshot. Records are stamped with a
// monotone log sequence number that is unified with the shard apply-queue
// ticket counter, so the replication watermark and the durability horizon
// are the same number. Recovery loads the latest valid checkpoint, replays
// the log suffix and rebuilds indices in O(|D|); a torn final record (the
// normal crash artifact) is truncated on open, while corruption anywhere
// else is reported as an error.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Policy selects when appended records are forced to stable storage.
type Policy uint8

const (
	// SyncOff never fsyncs on the append path: cheapest, loses the OS
	// write-back window on power failure (not on process crash — appends
	// are still write()s and survive a kill).
	SyncOff Policy = iota
	// SyncInterval fsyncs at most once per FsyncInterval, amortizing the
	// sync cost over all appends in the window; a crash loses at most one
	// window of acknowledged writes to power failure.
	SyncInterval
	// SyncCommit fsyncs before every append returns: an acknowledged write
	// is on stable storage, at per-operation fsync cost.
	SyncCommit
)

// ParsePolicy maps the CLI spelling ("off", "interval", "commit") to a
// Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "off":
		return SyncOff, nil
	case "interval":
		return SyncInterval, nil
	case "commit":
		return SyncCommit, nil
	default:
		return SyncOff, fmt.Errorf("wal: unknown fsync policy %q (want off, interval or commit)", s)
	}
}

// String returns the CLI spelling of the policy.
func (p Policy) String() string {
	switch p {
	case SyncInterval:
		return "interval"
	case SyncCommit:
		return "commit"
	default:
		return "off"
	}
}

// Options configures a Log. The zero value is usable: fsync off, default
// interval and segment size.
type Options struct {
	// Fsync is the sync policy for appended records.
	Fsync Policy
	// FsyncInterval is the window for SyncInterval (default 50ms).
	FsyncInterval time.Duration
	// SegmentBytes rolls the active segment when it would exceed this size
	// (default 8 MiB). Rolling always syncs the finished segment, so only
	// the final segment can ever be torn.
	SegmentBytes int64
}

const (
	defaultFsyncInterval = 50 * time.Millisecond
	defaultSegmentBytes  = 8 << 20
	// maxRecordBytes bounds a single frame body; anything larger read back
	// from disk is treated as a torn length header.
	maxRecordBytes = 16 << 20
	// frameHeaderLen is the [u32 length][u32 crc32c] prefix.
	frameHeaderLen = 8
	// bodyPrefixLen is the [u64 lsn][u8 kind] prefix of every body.
	bodyPrefixLen = 9

	segPrefix = "wal-"
	segSuffix = ".seg"
	ckPrefix  = "checkpoint-"
	ckSuffix  = ".snap"
	// keepCheckpoints is how many checkpoint files are retained. Keeping
	// the previous one as well as the latest means a checkpoint that turns
	// out unreadable still has a fallback whose log suffix is intact:
	// segments are pruned only below the OLDER retained checkpoint.
	keepCheckpoints = 2
)

// castagnoli is the CRC32C table used for frame checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// segment is one log file; start is the LSN of its first record (also its
// filename), size its current byte length.
type segment struct {
	path  string
	start uint64
	size  int64
}

// Log is an open write-ahead log directory. All methods are safe for
// concurrent use; appends are serialized internally.
type Log struct {
	dir  string
	opts Options

	mu         sync.Mutex // append path: active file, segment list
	f          *os.File
	segs       []segment
	next       uint64
	dirty      bool
	timerArmed bool
	closed     bool
	notify     chan struct{} // closed on append; see NotifyAppend

	ckmu sync.Mutex // serializes WriteCheckpoint

	lastA   atomic.Uint64
	ckLSN   atomic.Uint64
	sinceCk atomic.Int64

	appends     atomic.Int64
	fsyncs      atomic.Int64
	fsyncMicros atomic.Int64
	checkpoints atomic.Int64

	errmu    sync.Mutex
	firstErr error
}

// Stats is a point-in-time view of the log, surfaced by /stats.
type Stats struct {
	// LastLSN is the highest assigned LSN (0 when nothing was ever logged).
	LastLSN uint64
	// CheckpointLSN is the LSN the latest checkpoint covers.
	CheckpointLSN uint64
	// Segments is the number of live segment files.
	Segments int
	// SegmentBytes is the total size of the live segments.
	SegmentBytes int64
	// Appends counts records appended since open.
	Appends int64
	// Fsyncs counts fsync calls on the append path since open.
	Fsyncs int64
	// FsyncTotalMicros is the cumulative fsync latency in microseconds;
	// divide by Fsyncs for the mean.
	FsyncTotalMicros int64
	// Checkpoints counts checkpoints written since open.
	Checkpoints int64
	// Fsync is the configured policy.
	Fsync string
}

func segName(start uint64) string { return fmt.Sprintf("%s%020d%s", segPrefix, start, segSuffix) }
func ckName(lsn uint64) string    { return fmt.Sprintf("%s%020d%s", ckPrefix, lsn, ckSuffix) }

// parseSeqName extracts the 20-digit sequence number from a segment or
// checkpoint filename, reporting ok=false for anything else.
func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if len(mid) != 20 {
		return 0, false
	}
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listSegments returns the segment files of dir sorted by start LSN.
func listSegments(dir string) ([]segment, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range ents {
		if start, ok := parseSeqName(e.Name(), segPrefix, segSuffix); ok {
			info, err := e.Info()
			if err != nil {
				return nil, err
			}
			segs = append(segs, segment{path: filepath.Join(dir, e.Name()), start: start, size: info.Size()})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	return segs, nil
}

// listCheckpoints returns the checkpoint LSNs of dir in ascending order.
func listCheckpoints(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var lsns []uint64
	for _, e := range ents {
		if lsn, ok := parseSeqName(e.Name(), ckPrefix, ckSuffix); ok {
			lsns = append(lsns, lsn)
		}
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] < lsns[j] })
	return lsns, nil
}

// HasState reports whether dir contains any log segments or checkpoints,
// i.e. whether opening it recovers prior state rather than booting fresh.
func HasState(dir string) bool {
	segs, err := listSegments(dir)
	if err == nil && len(segs) > 0 {
		return true
	}
	cks, err := listCheckpoints(dir)
	return err == nil && len(cks) > 0
}

// syncDir fsyncs the directory entry so renames and creates survive a
// power failure.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Open opens (creating if necessary) the log in dir. Existing segments are
// scanned to find the last valid record; a torn tail in the final segment
// is truncated away, while a torn or corrupt non-final segment is an error
// (segment rolls sync, so a tear can only ever be at the very end).
func Open(dir string, opts Options) (*Log, error) {
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = defaultFsyncInterval
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	var last uint64
	for i := range segs {
		valid, torn, err := scanSegment(segs[i].path, func(rec Record) error {
			last = rec.LSN
			return nil
		})
		if err != nil {
			return nil, err
		}
		if torn {
			if i != len(segs)-1 {
				return nil, fmt.Errorf("wal: segment %s is truncated mid-stream but later segments exist", segs[i].path)
			}
			if err := os.Truncate(segs[i].path, valid); err != nil {
				return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
			}
			segs[i].size = valid
		}
	}
	cks, err := listCheckpoints(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	var ckLSN uint64
	if len(cks) > 0 {
		ckLSN = cks[len(cks)-1]
	}
	if ckLSN > last {
		// The checkpoint (synced via rename) outlived unsynced log tail —
		// possible under SyncOff/SyncInterval after power loss. The
		// checkpoint already covers those records.
		last = ckLSN
	}
	l := &Log{dir: dir, opts: opts, segs: segs, next: last + 1}
	l.lastA.Store(last)
	l.ckLSN.Store(ckLSN)
	if last > ckLSN {
		l.sinceCk.Store(int64(last - ckLSN))
	}
	if len(segs) > 0 {
		f, err := os.OpenFile(segs[len(segs)-1].path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: open active segment: %w", err)
		}
		l.f = f
	} else if err := l.newSegmentLocked(); err != nil {
		return nil, err
	}
	return l, nil
}

// newSegmentLocked creates a fresh active segment named by the next LSN.
// Callers hold l.mu (or have exclusive access during Open).
func (l *Log) newSegmentLocked() error {
	path := filepath.Join(l.dir, segName(l.next))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: create segment: %w", err)
	}
	l.f = f
	l.segs = append(l.segs, segment{path: path, start: l.next})
	return nil
}

// Append assigns the next LSN to rec, frames it and writes it to the
// active segment, honoring the fsync policy before returning. It returns
// the assigned LSN. After any append or sync failure the log is poisoned:
// the first error is retained (see Err) and every later Append fails fast,
// so an acknowledged-but-unlogged write can never slip through.
func (l *Log) Append(rec Record) (uint64, error) {
	body := make([]byte, bodyPrefixLen, bodyPrefixLen+64)
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.errLocked(); err != nil {
		return 0, err
	}
	if l.closed {
		// Poison too: the write being acknowledged upstream was refused
		// here, so health must report the log as no longer accepting.
		err := errors.New("wal: append on closed log")
		l.failLocked(err)
		return 0, err
	}
	lsn := l.next
	binary.LittleEndian.PutUint64(body[0:8], lsn)
	body[8] = byte(rec.Kind)
	body, err := appendPayload(body, rec)
	if err != nil {
		return 0, err
	}
	frame := make([]byte, frameHeaderLen+len(body))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(body, castagnoli))
	copy(frame[frameHeaderLen:], body)

	active := &l.segs[len(l.segs)-1]
	if active.size > 0 && active.size+int64(len(frame)) > l.opts.SegmentBytes {
		// Roll: always sync and close the finished segment so tears are
		// confined to the final one.
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
		if err := l.f.Close(); err != nil {
			l.failLocked(err)
			return 0, err
		}
		if err := l.newSegmentLocked(); err != nil {
			l.failLocked(err)
			return 0, err
		}
		active = &l.segs[len(l.segs)-1]
	}
	if _, err := l.f.Write(frame); err != nil {
		l.failLocked(err)
		return 0, err
	}
	active.size += int64(len(frame))
	l.next = lsn + 1
	l.lastA.Store(lsn)
	l.appends.Add(1)
	l.sinceCk.Add(1)
	if l.notify != nil {
		close(l.notify)
		l.notify = nil
	}
	switch l.opts.Fsync {
	case SyncCommit:
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	case SyncInterval:
		l.dirty = true
		if !l.timerArmed {
			l.timerArmed = true
			time.AfterFunc(l.opts.FsyncInterval, l.flushTimer)
		}
	default:
		l.dirty = true
	}
	return lsn, nil
}

// flushTimer is the deferred sync of the SyncInterval policy.
func (l *Log) flushTimer() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.timerArmed = false
	if l.closed || !l.dirty || l.errLocked() != nil {
		return
	}
	_ = l.syncLocked() // failure is retained via failLocked
}

// syncLocked fsyncs the active segment, timing the call. Callers hold l.mu.
func (l *Log) syncLocked() error {
	t0 := time.Now()
	err := l.f.Sync()
	l.fsyncs.Add(1)
	l.fsyncMicros.Add(time.Since(t0).Microseconds())
	if err != nil {
		l.failLocked(err)
		return err
	}
	l.dirty = false
	return nil
}

// Sync forces outstanding appends to stable storage regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	if err := l.errLocked(); err != nil {
		return err
	}
	return l.syncLocked()
}

// Close syncs and closes the active segment. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.notify != nil {
		// Wake blocked tailers; they observe no new LSN and re-wait (or
		// exit via their context), rather than sleeping into a dead log.
		close(l.notify)
		l.notify = nil
	}
	if l.errLocked() == nil {
		if err := l.syncLocked(); err != nil {
			l.f.Close()
			return err
		}
	}
	return l.f.Close()
}

// LastLSN returns the highest assigned LSN.
func (l *Log) LastLSN() uint64 { return l.lastA.Load() }

// CheckpointLSN returns the LSN covered by the latest checkpoint.
func (l *Log) CheckpointLSN() uint64 { return l.ckLSN.Load() }

// SinceCheckpoint returns the number of records appended past the latest
// checkpoint — the replay debt a crash would incur. Callers use it to
// trigger checkpoints every N writes.
func (l *Log) SinceCheckpoint() int64 { return l.sinceCk.Load() }

// failLocked retains the first unrecoverable error; the health endpoint
// surfaces it as a degraded state.
func (l *Log) failLocked(err error) {
	l.errmu.Lock()
	if l.firstErr == nil {
		l.firstErr = err
	}
	l.errmu.Unlock()
}

// errLocked returns the retained first error, if any.
func (l *Log) errLocked() error {
	l.errmu.Lock()
	defer l.errmu.Unlock()
	return l.firstErr
}

// Err returns the first append, sync or checkpoint error the log hit, or
// nil. A non-nil value means acknowledged durability can no longer be
// trusted and the process should be restarted to recover.
func (l *Log) Err() error {
	l.errmu.Lock()
	defer l.errmu.Unlock()
	return l.firstErr
}

// Stats returns a point-in-time view of the log.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	n := len(l.segs)
	var bytes int64
	for i := range l.segs {
		bytes += l.segs[i].size
	}
	l.mu.Unlock()
	return Stats{
		LastLSN:          l.lastA.Load(),
		CheckpointLSN:    l.ckLSN.Load(),
		Segments:         n,
		SegmentBytes:     bytes,
		Appends:          l.appends.Load(),
		Fsyncs:           l.fsyncs.Load(),
		FsyncTotalMicros: l.fsyncMicros.Load(),
		Checkpoints:      l.checkpoints.Load(),
		Fsync:            l.opts.Fsync.String(),
	}
}

// WriteCheckpoint durably writes a snapshot covering every record with LSN
// ≤ lsn, then prunes checkpoints beyond the newest two and every segment
// whose records all fall at or below the older retained checkpoint. The
// caller supplies save (normally store.DB.Save) and must guarantee the
// snapshot it writes contains the effect of every record ≤ lsn; records
// > lsn may leak in (replay is idempotent and in-order, so re-applying
// them converges), missing ones may not. The snapshot is written to a
// temporary file, synced and renamed, so a crash mid-checkpoint leaves the
// previous checkpoint intact.
func (l *Log) WriteCheckpoint(lsn uint64, save func(io.Writer) error) error {
	l.ckmu.Lock()
	defer l.ckmu.Unlock()
	if err := l.writeCheckpointFile(lsn, save); err != nil {
		l.failLocked(err)
		return err
	}
	// Monotone update: a concurrent caller could in principle checkpoint a
	// later LSN first.
	for {
		cur := l.ckLSN.Load()
		if lsn <= cur || l.ckLSN.CompareAndSwap(cur, lsn) {
			break
		}
	}
	l.sinceCk.Store(0)
	l.checkpoints.Add(1)
	return l.pruneLocked()
}

// writeCheckpointFile writes checkpoint lsn via tmp+rename.
func (l *Log) writeCheckpointFile(lsn uint64, save func(io.Writer) error) error {
	final := filepath.Join(l.dir, ckName(lsn))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	defer os.Remove(tmp) // no-op after successful rename
	hdr := make([]byte, ckHeaderLen)
	copy(hdr, ckMagic)
	hdr[4] = ckVersion
	binary.LittleEndian.PutUint64(hdr[5:13], lsn)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := save(f); err != nil {
		f.Close()
		return fmt.Errorf("wal: checkpoint snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	return nil
}

// pruneLocked removes checkpoints beyond the newest keepCheckpoints and
// segments fully covered by the older retained checkpoint. Callers hold
// l.ckmu.
func (l *Log) pruneLocked() error {
	cks, err := listCheckpoints(l.dir)
	if err != nil {
		return fmt.Errorf("wal: prune: %w", err)
	}
	for len(cks) > keepCheckpoints {
		if err := os.Remove(filepath.Join(l.dir, ckName(cks[0]))); err != nil {
			return fmt.Errorf("wal: prune: %w", err)
		}
		cks = cks[1:]
	}
	var pruneLSN uint64
	if len(cks) > 0 {
		// The oldest retained checkpoint still needs its log suffix, so
		// only segments ending at or below IT are dead.
		pruneLSN = cks[0]
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.segs[:0]
	for i := range l.segs {
		// A segment's records end where the next segment starts; the
		// active (last) segment is never pruned.
		if i+1 < len(l.segs) && l.segs[i+1].start-1 <= pruneLSN {
			if err := os.Remove(l.segs[i].path); err != nil {
				rest := append(kept, l.segs[i:]...)
				l.segs = rest
				return fmt.Errorf("wal: prune: %w", err)
			}
			continue
		}
		kept = append(kept, l.segs[i])
	}
	l.segs = kept
	return nil
}

// segmentOpenHook, when non-nil, observes every segment file opened on the
// read path (full scans and first-LSN probes alike). Tests set it to prove
// the tail-read fast path of Records touches only the final segment.
var segmentOpenHook func(path string)

// scanSegment reads frames from path in order, invoking fn per valid
// record. It returns the byte offset after the last valid frame and
// whether the file ends in a torn (incomplete or checksum-failing) tail.
// A decode failure after a passing checksum is a real error, not a tear.
func scanSegment(path string, fn func(Record) error) (valid int64, torn bool, err error) {
	return scanSegmentAt(path, 0, fn)
}

// scanSegmentAt is scanSegment starting at byte offset off, which must be
// a frame boundary (0 or a valid offset returned by a previous scan). The
// replication tail uses it to resume the active segment without re-decoding
// the prefix it already delivered.
func scanSegmentAt(path string, off int64, fn func(Record) error) (valid int64, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return off, false, fmt.Errorf("wal: scan: %w", err)
	}
	defer f.Close()
	if segmentOpenHook != nil {
		segmentOpenHook(path)
	}
	if off > 0 {
		if _, err := f.Seek(off, io.SeekStart); err != nil {
			return off, false, fmt.Errorf("wal: scan %s: %w", path, err)
		}
	}
	hdr := make([]byte, frameHeaderLen)
	body := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			if errors.Is(err, io.EOF) {
				return off, false, nil // clean end
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return off, true, nil // partial header
			}
			return off, false, fmt.Errorf("wal: scan %s: %w", path, err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		if n < bodyPrefixLen || n > maxRecordBytes {
			return off, true, nil // garbage length ⇒ torn
		}
		if int64(cap(body)) < int64(n) {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(f, body); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return off, true, nil // partial body
			}
			return off, false, fmt.Errorf("wal: scan %s: %w", path, err)
		}
		if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
			return off, true, nil // checksum mismatch ⇒ torn
		}
		rec, err := decodePayload(Kind(body[8]), body[bodyPrefixLen:])
		if err != nil {
			return off, false, fmt.Errorf("wal: scan %s at offset %d: %w", path, off, err)
		}
		rec.LSN = binary.LittleEndian.Uint64(body[0:8])
		if err := fn(rec); err != nil {
			return off, false, err
		}
		off += int64(frameHeaderLen) + int64(n)
	}
}

const (
	ckVersion   = 1
	ckHeaderLen = 13
)

var ckMagic = []byte("BWCK")

package wal

import (
	"encoding/binary"
	"fmt"

	"repro/internal/access"
	"repro/internal/store"
	"repro/internal/value"
)

// Kind discriminates the record types carried by the log.
type Kind uint8

const (
	// KindTuple is a single tuple insert or delete (store.TupleOp).
	KindTuple Kind = 1
	// KindAddConstraint records an access constraint added to the serving
	// schema (its index is rebuilt from the data on recovery, not logged).
	KindAddConstraint Kind = 2
	// KindRemoveConstraint records an access constraint removed from the
	// serving schema.
	KindRemoveConstraint Kind = 3
)

// Record is one logged event. LSN is assigned by Append and is the same
// monotone counter the shard apply queue uses as its ticket, so "the write
// at ticket T" and "the log record at LSN T" are the same event. Exactly
// one of Op (KindTuple) or Con (constraint kinds) is meaningful.
type Record struct {
	// LSN is the log sequence number; zero on input to Append.
	LSN uint64
	// Kind selects the payload.
	Kind Kind
	// Op is the tuple write for KindTuple records.
	Op store.TupleOp
	// Con is the constraint for KindAddConstraint / KindRemoveConstraint.
	Con access.Constraint
}

// appendString appends a uvarint-length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendValue appends one scalar: a kind byte, then for Int a zigzag
// varint, for Str a length-prefixed string, for Null nothing.
func appendValue(b []byte, v value.Value) []byte {
	b = append(b, byte(v.K))
	switch v.K {
	case value.Int:
		b = binary.AppendVarint(b, v.I)
	case value.Str:
		b = appendString(b, v.S)
	}
	return b
}

// appendPayload appends the kind-specific payload of rec.
func appendPayload(b []byte, rec Record) ([]byte, error) {
	switch rec.Kind {
	case KindTuple:
		if rec.Op.Del {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = appendString(b, rec.Op.Rel)
		b = binary.AppendUvarint(b, uint64(len(rec.Op.T)))
		for _, v := range rec.Op.T {
			b = appendValue(b, v)
		}
	case KindAddConstraint, KindRemoveConstraint:
		b = appendString(b, rec.Con.Rel)
		b = binary.AppendUvarint(b, uint64(len(rec.Con.X)))
		for _, a := range rec.Con.X {
			b = appendString(b, a)
		}
		b = binary.AppendUvarint(b, uint64(len(rec.Con.Y)))
		for _, a := range rec.Con.Y {
			b = appendString(b, a)
		}
		b = binary.AppendUvarint(b, uint64(rec.Con.N))
	default:
		return nil, fmt.Errorf("wal: unknown record kind %d", rec.Kind)
	}
	return b, nil
}

// cursor is a bounds-checked reader over a decoded record body.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) fail(what string) {
	if c.err == nil {
		c.err = fmt.Errorf("wal: record payload: truncated %s", what)
	}
}

func (c *cursor) byte() byte {
	if c.err != nil {
		return 0
	}
	if c.off >= len(c.b) {
		c.fail("byte")
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		c.fail("uvarint")
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) varint() int64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.b[c.off:])
	if n <= 0 {
		c.fail("varint")
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) string() string {
	n := c.uvarint()
	if c.err != nil {
		return ""
	}
	if uint64(len(c.b)-c.off) < n {
		c.fail("string")
		return ""
	}
	s := string(c.b[c.off : c.off+uint64asInt(n)])
	c.off += uint64asInt(n)
	return s
}

// uint64asInt narrows n, which string() has already bounds-checked against
// the remaining buffer, so the conversion cannot overflow.
func uint64asInt(n uint64) int { return int(n) }

func (c *cursor) value() value.Value {
	k := value.Kind(c.byte())
	switch k {
	case value.Null:
		return value.Value{}
	case value.Int:
		return value.Value{K: value.Int, I: c.varint()}
	case value.Str:
		return value.Value{K: value.Str, S: c.string()}
	default:
		c.fail("value kind")
		return value.Value{}
	}
}

// decodePayload parses the kind-specific payload into rec.
func decodePayload(kind Kind, payload []byte) (Record, error) {
	rec := Record{Kind: kind}
	c := &cursor{b: payload}
	switch kind {
	case KindTuple:
		rec.Op.Del = c.byte() == 1
		rec.Op.Rel = c.string()
		n := c.uvarint()
		if c.err == nil && n > uint64(len(payload)) {
			return rec, fmt.Errorf("wal: record payload: tuple arity %d exceeds payload", n)
		}
		rec.Op.T = make(value.Tuple, 0, n)
		for i := uint64(0); i < n && c.err == nil; i++ {
			rec.Op.T = append(rec.Op.T, c.value())
		}
	case KindAddConstraint, KindRemoveConstraint:
		rec.Con.Rel = c.string()
		nx := c.uvarint()
		for i := uint64(0); i < nx && c.err == nil; i++ {
			rec.Con.X = append(rec.Con.X, c.string())
		}
		ny := c.uvarint()
		for i := uint64(0); i < ny && c.err == nil; i++ {
			rec.Con.Y = append(rec.Con.Y, c.string())
		}
		rec.Con.N = int(c.uvarint())
	default:
		return rec, fmt.Errorf("wal: unknown record kind %d", kind)
	}
	if c.err != nil {
		return rec, c.err
	}
	if c.off != len(payload) {
		return rec, fmt.Errorf("wal: record payload: %d trailing bytes", len(payload)-c.off)
	}
	return rec, nil
}

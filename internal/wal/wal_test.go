package wal

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/ra"
	"repro/internal/store"
	"repro/internal/value"
)

func testSchema() ra.Schema {
	return ra.Schema{"r": {"a", "b"}, "s": {"x"}}
}

func iv(i int) value.Value { return value.NewInt(int64(i)) }

func tupleRec(rel string, del bool, vals ...value.Value) Record {
	return Record{Kind: KindTuple, Op: store.TupleOp{Rel: rel, T: value.Tuple(vals), Del: del}}
}

func mustAppend(t *testing.T, l *Log, rec Record) uint64 {
	t.Helper()
	lsn, err := l.Append(rec)
	if err != nil {
		t.Fatal(err)
	}
	return lsn
}

func readAll(t *testing.T, dir string) []Record {
	t.Helper()
	var out []Record
	if err := Records(dir, 0, func(r Record) error {
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		tupleRec("r", false, iv(1), value.NewStr("héllo ✓")),
		tupleRec("r", true, iv(-5), value.NewStr("")),
		tupleRec("s", false, value.Value{}),
		{Kind: KindAddConstraint, Con: access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b"}, N: 7}},
		{Kind: KindRemoveConstraint, Con: access.Constraint{Rel: "s", X: nil, Y: []string{"x"}, N: 3}},
	}
	for i, rec := range want {
		lsn := mustAppend(t, l, rec)
		if lsn != uint64(i+1) {
			t.Fatalf("lsn %d for record %d, want %d", lsn, i, i+1)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got := readAll(t, dir)
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		w := want[i]
		w.LSN = uint64(i + 1)
		g := got[i]
		if g.LSN != w.LSN || g.Kind != w.Kind || g.Op.Rel != w.Op.Rel || g.Op.Del != w.Op.Del ||
			!g.Op.T.Equal(w.Op.T) || g.Con.Key() != w.Con.Key() || g.Con.N != w.Con.N {
			t.Errorf("record %d: got %+v want %+v", i, g, w)
		}
	}

	// Reopen continues the LSN sequence.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastLSN() != uint64(len(want)) {
		t.Fatalf("LastLSN %d after reopen, want %d", l2.LastLSN(), len(want))
	}
	if lsn := mustAppend(t, l2, tupleRec("r", false, iv(9), iv(9))); lsn != uint64(len(want)+1) {
		t.Fatalf("lsn %d after reopen, want %d", lsn, len(want)+1)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	cases := []struct {
		name string
		tear func(path string, t *testing.T)
	}{
		{"partial-header", func(path string, t *testing.T) { appendBytes(t, path, []byte{0x03, 0x00, 0x00}) }},
		{"partial-body", func(path string, t *testing.T) {
			// Plausible length, CRC, but body cut short.
			appendBytes(t, path, []byte{40, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3})
		}},
		{"garbage-length", func(path string, t *testing.T) {
			appendBytes(t, path, []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1})
		}},
		{"crc-flip", func(path string, t *testing.T) { flipLastByte(t, path) }},
		{"mid-record-cut", func(path string, t *testing.T) { truncateBy(t, path, 3) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				mustAppend(t, l, tupleRec("r", false, iv(i), iv(i)))
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			segs, err := listSegments(dir)
			if err != nil || len(segs) != 1 {
				t.Fatalf("segments: %v %v", segs, err)
			}
			tc.tear(segs[0].path, t)

			wantRecords := 10
			if tc.name == "crc-flip" || tc.name == "mid-record-cut" {
				wantRecords = 9 // the final intact record was damaged
			}
			l2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got := l2.LastLSN(); got != uint64(wantRecords) {
				t.Fatalf("LastLSN %d after torn open, want %d", got, wantRecords)
			}
			// The log keeps working past the truncation point.
			if lsn := mustAppend(t, l2, tupleRec("r", false, iv(99), iv(99))); lsn != uint64(wantRecords+1) {
				t.Fatalf("append after tear got lsn %d, want %d", lsn, wantRecords+1)
			}
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
			if got := readAll(t, dir); len(got) != wantRecords+1 {
				t.Fatalf("%d records after reopen+append, want %d", len(got), wantRecords+1)
			}
		})
	}
}

func TestTornNonFinalSegmentIsError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64}) // force several segments
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		mustAppend(t, l, tupleRec("r", false, iv(i), iv(i)))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %d", len(segs))
	}
	truncateBy(t, segs[0].path, 2)
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("open accepted a mid-stream truncated segment")
	}
}

func TestSegmentRollAndPrune(t *testing.T) {
	dir := t.TempDir()
	db := store.NewDB(testSchema())
	l, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 50; i++ {
		lsn := mustAppend(t, l, tupleRec("r", false, iv(i), iv(i)))
		if _, err := db.Insert("r", value.Tuple{iv(i), iv(i)}); err != nil {
			t.Fatal(err)
		}
		if i == 20 || i == 35 || i == 49 {
			if err := l.WriteCheckpoint(lsn, db.Save); err != nil {
				t.Fatal(err)
			}
		}
	}
	cks, err := listCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) != keepCheckpoints {
		t.Fatalf("%d checkpoints retained, want %d", len(cks), keepCheckpoints)
	}
	if cks[0] != 36 || cks[1] != 50 {
		t.Fatalf("retained checkpoints %v, want [36 50]", cks)
	}
	// Segments fully covered by the older checkpoint must be gone, but the
	// surviving log must still cover everything past it (LSN 37 onward).
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 || segs[0].start == 1 {
		t.Fatalf("expected pruning to drop the oldest segments, have %v", segs)
	}
	var first uint64
	if err := Records(dir, 0, func(r Record) error {
		if first == 0 {
			first = r.LSN
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if first == 0 || first > 37 {
		t.Fatalf("surviving log starts at %d, want ≤ 37 (suffix of older checkpoint intact)", first)
	}
	if l.CheckpointLSN() != 50 {
		t.Fatalf("CheckpointLSN %d, want 50", l.CheckpointLSN())
	}
	if l.SinceCheckpoint() != 0 {
		t.Fatalf("SinceCheckpoint %d, want 0", l.SinceCheckpoint())
	}
}

func TestRecoverDBFromCheckpointAndSuffix(t *testing.T) {
	dir := t.TempDir()
	db := store.NewDB(testSchema())
	cons := access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b"}, N: 5}
	if _, err := db.BuildIndex(cons); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Ten inserts, checkpoint, then a suffix: delete one, insert two, and
	// a constraint change.
	for i := 0; i < 10; i++ {
		mustAppend(t, l, tupleRec("r", false, iv(i), iv(i)))
		if _, err := db.Insert("r", value.Tuple{iv(i), iv(i)}); err != nil {
			t.Fatal(err)
		}
	}
	mustAppend(t, l, Record{Kind: KindAddConstraint, Con: cons})
	if err := l.WriteCheckpoint(l.LastLSN(), db.Save); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, tupleRec("r", true, iv(3), iv(3)))
	mustAppend(t, l, tupleRec("r", false, iv(100), iv(100)))
	cons2 := access.Constraint{Rel: "s", X: nil, Y: []string{"x"}, N: 2}
	mustAppend(t, l, Record{Kind: KindAddConstraint, Con: cons2})
	mustAppend(t, l, Record{Kind: KindRemoveConstraint, Con: cons})
	lastLSN := l.LastLSN()
	// Abrupt stop: no Close. (Writes are buffered in the page cache, which
	// an in-process "crash" does not lose.)

	rec, err := RecoverDB(dir, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Found {
		t.Fatal("recovery found no state")
	}
	if rec.LastLSN != lastLSN {
		t.Fatalf("recovered LastLSN %d, want %d", rec.LastLSN, lastLSN)
	}
	if rec.Replayed != 4 {
		t.Fatalf("replayed %d records, want 4", rec.Replayed)
	}
	if n := rec.DB.Size(); n != 10 {
		t.Fatalf("recovered size %d, want 10", n)
	}
	if ok, _ := rec.DB.Has("r", value.Tuple{iv(3), iv(3)}); ok {
		t.Error("deleted tuple survived recovery")
	}
	if ok, _ := rec.DB.Has("r", value.Tuple{iv(100), iv(100)}); !ok {
		t.Error("post-checkpoint insert lost")
	}
	if len(rec.Constraints) != 1 || rec.Constraints[0].Key() != cons2.Key() {
		t.Fatalf("recovered constraints %v, want just %v", rec.Constraints, cons2)
	}
	if len(rec.DB.Indexes()) != 0 {
		t.Error("RecoverDB built indices; callers rebuild them once")
	}
}

func TestRecoverDBFreshDir(t *testing.T) {
	rec, err := RecoverDB(t.TempDir(), testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Found || rec.DB != nil {
		t.Fatalf("fresh dir reported state: %+v", rec)
	}
}

func TestRecoverFallsBackToPreviousCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db := store.NewDB(testSchema())
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		mustAppend(t, l, tupleRec("r", false, iv(i), iv(i)))
		if _, err := db.Insert("r", value.Tuple{iv(i), iv(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WriteCheckpoint(l.LastLSN(), db.Save); err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 8; i++ {
		mustAppend(t, l, tupleRec("r", false, iv(i), iv(i)))
		if _, err := db.Insert("r", value.Tuple{iv(i), iv(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WriteCheckpoint(l.LastLSN(), db.Save); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest checkpoint body; recovery must fall back to the
	// older one and replay the longer suffix to the same final state.
	cks, err := listCheckpoints(dir)
	if err != nil || len(cks) != 2 {
		t.Fatalf("checkpoints: %v %v", cks, err)
	}
	flipLastByte(t, filepath.Join(dir, ckName(cks[1])))
	rec, err := RecoverDB(dir, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if rec.CheckpointLSN != cks[0] {
		t.Fatalf("recovered from checkpoint %d, want fallback %d", rec.CheckpointLSN, cks[0])
	}
	if rec.DB.Size() != 8 {
		t.Fatalf("recovered size %d, want 8", rec.DB.Size())
	}
}

func TestCheckpointAheadOfLogTail(t *testing.T) {
	// SyncOff power loss can leave a (rename-durable) checkpoint covering
	// LSNs whose log records were lost. Open must resume past the
	// checkpoint, not reuse LSNs.
	dir := t.TempDir()
	db := store.NewDB(testSchema())
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		mustAppend(t, l, tupleRec("r", false, iv(i), iv(i)))
		if _, err := db.Insert("r", value.Tuple{iv(i), iv(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WriteCheckpoint(6, db.Save); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the lost unsynced tail: empty the segment entirely; the
	// checkpoint still covers all six records.
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[len(segs)-1].path, 0); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if l2.LastLSN() != 6 {
		t.Fatalf("LastLSN %d, want 6 (from checkpoint)", l2.LastLSN())
	}
	if lsn := mustAppend(t, l2, tupleRec("r", false, iv(7), iv(7))); lsn != 7 {
		t.Fatalf("next lsn %d, want 7", lsn)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := RecoverDB(dir, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if rec.DB.Size() != 7 {
		t.Fatalf("recovered size %d, want 7", rec.DB.Size())
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
		ok   bool
	}{
		{"off", SyncOff, true},
		{"interval", SyncInterval, true},
		{"commit", SyncCommit, true},
		{"", SyncOff, false},
		{"always", SyncOff, false},
	} {
		got, err := ParsePolicy(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
		if tc.ok && got.String() != tc.in {
			t.Errorf("Policy(%q).String() = %q", tc.in, got.String())
		}
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, pol := range []Policy{SyncOff, SyncInterval, SyncCommit} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{Fsync: pol, FsyncInterval: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 20; i++ {
				mustAppend(t, l, tupleRec("r", false, iv(i), iv(i)))
			}
			st := l.Stats()
			if pol == SyncCommit && st.Fsyncs < 20 {
				t.Errorf("commit policy: %d fsyncs for 20 appends", st.Fsyncs)
			}
			if pol == SyncInterval {
				deadline := time.Now().Add(2 * time.Second)
				for l.Stats().Fsyncs == 0 && time.Now().Before(deadline) {
					time.Sleep(5 * time.Millisecond)
				}
				if l.Stats().Fsyncs == 0 {
					t.Error("interval policy: no fsync within 2s")
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			if got := len(readAll(t, dir)); got != 20 {
				t.Fatalf("%d records, want 20", got)
			}
		})
	}
}

func TestStats(t *testing.T) {
	dir := t.TempDir()
	db := store.NewDB(testSchema())
	l, err := Open(dir, Options{Fsync: SyncCommit})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 5; i++ {
		mustAppend(t, l, tupleRec("r", false, iv(i), iv(i)))
	}
	if err := l.WriteCheckpoint(l.LastLSN(), db.Save); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.LastLSN != 5 || st.CheckpointLSN != 5 || st.Appends != 5 || st.Checkpoints != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.Segments == 0 || st.SegmentBytes == 0 {
		t.Fatalf("stats missing segment accounting: %+v", st)
	}
	if st.Fsyncs == 0 || st.FsyncTotalMicros < 0 {
		t.Fatalf("stats missing fsync accounting: %+v", st)
	}
	if st.Fsync != "commit" {
		t.Fatalf("stats policy %q", st.Fsync)
	}
}

func TestHasState(t *testing.T) {
	dir := t.TempDir()
	if HasState(dir) {
		t.Fatal("fresh dir has state")
	}
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if !HasState(dir) {
		t.Fatal("opened dir has no state")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(tupleRec("r", false, iv(1), iv(1))); err == nil {
		t.Fatal("append accepted on closed log")
	}
}

// --- file surgery helpers --------------------------------------------------

func appendBytes(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func truncateBy(t *testing.T, path string, n int64) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-n); err != nil {
		t.Fatal(err)
	}
}

func flipLastByte(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) == 0 {
		t.Fatal("empty file")
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

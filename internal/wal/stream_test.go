package wal

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/store"
	"repro/internal/value"
)

// --- frame codec ---

func TestEncodeFrameReadFramesRoundTrip(t *testing.T) {
	want := []Record{
		{LSN: 1, Kind: KindTuple, Op: store.TupleOp{Rel: "r", T: value.Tuple{iv(1), value.NewStr("héllo")}}},
		{LSN: 2, Kind: KindTuple, Op: store.TupleOp{Rel: "r", T: value.Tuple{iv(-5), value.NewStr("")}, Del: true}},
		{LSN: 3, Kind: KindAddConstraint, Con: access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b"}, N: 7}},
		{LSN: 9, Kind: KindHeartbeat},
		{LSN: 4, Kind: KindRemoveConstraint, Con: access.Constraint{Rel: "s", Y: []string{"x"}, N: 3}},
	}
	var buf bytes.Buffer
	for _, rec := range want {
		frame, err := EncodeFrame(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(frame)
	}
	var got []Record
	if err := ReadFrames(&buf, func(r Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestReadFramesRejectsCorruption(t *testing.T) {
	frame, err := EncodeFrame(Record{LSN: 1, Kind: KindTuple, Op: store.TupleOp{Rel: "r", T: value.Tuple{iv(1), iv(2)}}})
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), frame...)
	flipped[len(flipped)-1] ^= 0xff
	if err := ReadFrames(bytes.NewReader(flipped), func(Record) error { return nil }); err == nil {
		t.Fatal("corrupt frame decoded without error")
	}
	// A truncated stream is an error too — no torn-tail forgiveness on a
	// network stream.
	if err := ReadFrames(bytes.NewReader(frame[:len(frame)-1]), func(Record) error { return nil }); err == nil {
		t.Fatal("truncated frame decoded without error")
	}
}

func TestAppendRejectsHeartbeat(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(Record{Kind: KindHeartbeat}); err == nil {
		t.Fatal("Append accepted a stream-only heartbeat record")
	}
}

// --- Records segment skipping (regression for the full-log rescan) ---

// TestRecordsTailReadOpensOnlyFinalSegment pins the tail-read fast path: a
// Records call from an LSN inside the final segment of a multi-segment log
// must not open (let alone decode) any earlier segment.
func TestRecordsTailReadOpensOnlyFinalSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 200; i++ {
		last = mustAppend(t, l, tupleRec("r", false, iv(i), iv(i)))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("want ≥ 3 segments for the skip to matter, got %d", len(segs))
	}
	final := segs[len(segs)-1]

	opened := map[string]int{}
	segmentOpenHook = func(path string) { opened[filepath.Base(path)]++ }
	defer func() { segmentOpenHook = nil }()

	after := final.start // tail read: everything before the final segment is below it
	var got []uint64
	if err := Records(dir, after, func(r Record) error {
		got = append(got, r.LSN)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for name := range opened {
		if name != filepath.Base(final.path) {
			t.Errorf("tail read opened non-final segment %s", name)
		}
	}
	want := int(last - after)
	if len(got) != want {
		t.Fatalf("tail read returned %d records, want %d", len(got), want)
	}
	for i, lsn := range got {
		if lsn != after+uint64(i)+1 {
			t.Fatalf("record %d has LSN %d, want %d", i, lsn, after+uint64(i)+1)
		}
	}
}

// TestRecordsSkipStartsAtCoveringSegment drives cut points across every
// segment boundary and checks the exact record set comes back each time —
// the skip must never drop a record the cut still needs.
func TestRecordsSkipStartsAtCoveringSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 120; i++ {
		last = mustAppend(t, l, tupleRec("r", false, iv(i), iv(i)))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	for after := uint64(0); after <= last; after++ {
		var got []uint64
		if err := Records(dir, after, func(r Record) error {
			got = append(got, r.LSN)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != int(last-after) {
			t.Fatalf("after=%d: got %d records, want %d", after, len(got), last-after)
		}
		for i, lsn := range got {
			if lsn != after+uint64(i)+1 {
				t.Fatalf("after=%d: record %d has LSN %d", after, i, lsn)
			}
		}
	}
}

// --- RecoverDB ordering guard (regression for the Replayed>0 condition) ---

// TestRecoverDBRejectsDuplicateLSN feeds hand-built segments whose frames
// repeat or regress an LSN and requires recovery to refuse them. The guard
// must hold unconditionally — including against a duplicate of the very
// first record replayed past a checkpoint — rather than relying on the
// Records-side filter.
func TestRecoverDBRejectsDuplicateLSN(t *testing.T) {
	writeSeg := func(t *testing.T, dir string, start uint64, lsns ...uint64) {
		t.Helper()
		var buf bytes.Buffer
		for _, lsn := range lsns {
			frame, err := EncodeFrame(Record{LSN: lsn, Kind: KindTuple, Op: store.TupleOp{Rel: "r", T: value.Tuple{iv(int(lsn)), iv(0)}}})
			if err != nil {
				t.Fatal(err)
			}
			buf.Write(frame)
		}
		if err := os.WriteFile(filepath.Join(dir, segName(start)), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Run("duplicate", func(t *testing.T) {
		dir := t.TempDir()
		writeSeg(t, dir, 1, 1, 2, 2)
		if _, err := RecoverDB(dir, testSchema()); err == nil {
			t.Fatal("recovery accepted a duplicate LSN")
		}
	})
	t.Run("regression", func(t *testing.T) {
		dir := t.TempDir()
		writeSeg(t, dir, 1, 1, 3, 2)
		if _, err := RecoverDB(dir, testSchema()); err == nil {
			t.Fatal("recovery accepted a regressing LSN")
		}
	})
	t.Run("first record after checkpoint", func(t *testing.T) {
		// Build a real checkpoint at LSN 2, then a suffix whose first two
		// frames BOTH carry LSN 3: the duplicate is the first replay step.
		dir := t.TempDir()
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		db := store.NewDB(testSchema())
		for i := 1; i <= 2; i++ {
			if _, err := db.Insert("r", value.Tuple{iv(i), iv(i)}); err != nil {
				t.Fatal(err)
			}
			mustAppend(t, l, tupleRec("r", false, iv(i), iv(i)))
		}
		if err := l.WriteCheckpoint(2, db.Save); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		// Remove the real segments and replace with the poisoned suffix.
		segs, err := listSegments(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range segs {
			if err := os.Remove(s.path); err != nil {
				t.Fatal(err)
			}
		}
		writeSeg(t, dir, 3, 3, 3)
		if _, err := RecoverDB(dir, testSchema()); err == nil {
			t.Fatal("recovery accepted a duplicate first record")
		}
	})
}

// --- property: Records(dir, after) ∘ apply ≡ RecoverDB(dir) ---

// applyOracle applies rec to a bare store + constraint map exactly like
// RecoverDB's replay loop does.
func applyOracle(t *testing.T, db *store.DB, cons map[string]access.Constraint, rec Record) {
	t.Helper()
	switch rec.Kind {
	case KindTuple:
		var err error
		if rec.Op.Del {
			_, err = db.Delete(rec.Op.Rel, rec.Op.T)
		} else {
			_, err = db.Insert(rec.Op.Rel, rec.Op.T)
		}
		if err != nil {
			t.Fatal(err)
		}
	case KindAddConstraint:
		cons[rec.Con.Key()] = rec.Con
	case KindRemoveConstraint:
		delete(cons, rec.Con.Key())
	}
}

func sortedRows(t *testing.T, db *store.DB, rel string) []string {
	t.Helper()
	rows, err := db.Rows(rel)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprintf("%v", r)
	}
	sort.Strings(out)
	return out
}

func sortedConKeys(cons map[string]access.Constraint) []string {
	keys := make([]string, 0, len(cons))
	for k := range cons {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TestRecordsApplyEqualsRecoverProperty is the contract the follower
// bootstrap relies on: for any op stream and any cut point C whose suffix
// survives pruning, reconstructing the state at C and applying
// Records(dir, C) yields exactly RecoverDB(dir)'s state.
func TestRecordsApplyEqualsRecoverProperty(t *testing.T) {
	schema := testSchema()
	rng := rand.New(rand.NewSource(42))
	randomRec := func() Record {
		switch rng.Intn(10) {
		case 0:
			return Record{Kind: KindAddConstraint, Con: access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b"}, N: 1 + rng.Intn(4)}}
		case 1:
			return Record{Kind: KindRemoveConstraint, Con: access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b"}, N: 1 + rng.Intn(4)}}
		default:
			rel := "r"
			tup := value.Tuple{iv(rng.Intn(8)), iv(rng.Intn(8))}
			if rng.Intn(4) == 0 {
				rel, tup = "s", value.Tuple{iv(rng.Intn(8))}
			}
			return Record{Kind: KindTuple, Op: store.TupleOp{Rel: rel, T: tup, Del: rng.Intn(3) == 0}}
		}
	}
	for iter := 0; iter < 20; iter++ {
		dir := t.TempDir()
		l, err := Open(dir, Options{SegmentBytes: 256})
		if err != nil {
			t.Fatal(err)
		}
		db := store.NewDB(schema)
		cons := map[string]access.Constraint{}
		type step struct {
			rec Record
			lsn uint64
		}
		var steps []step
		var ckLSNs []uint64
		useCk := iter%2 == 1
		n := 20 + rng.Intn(100)
		for i := 0; i < n; i++ {
			rec := randomRec()
			applyOracle(t, db, cons, rec)
			lsn := mustAppend(t, l, rec)
			steps = append(steps, step{rec, lsn})
			if useCk && rng.Intn(25) == 0 {
				consList := make([]access.Constraint, 0, len(cons))
				for _, k := range sortedConKeys(cons) {
					consList = append(consList, cons[k])
				}
				rels := map[string][]value.Tuple{}
				for rel := range schema {
					rows, err := db.Rows(rel)
					if err != nil {
						t.Fatal(err)
					}
					rels[rel] = rows
				}
				if err := l.WriteCheckpoint(lsn, func(w io.Writer) error {
					return store.SaveSnapshot(w, schema, consList, rels)
				}); err != nil {
					t.Fatal(err)
				}
				ckLSNs = append(ckLSNs, lsn)
			}
		}
		last := l.LastLSN()
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		want, err := RecoverDB(dir, schema)
		if err != nil {
			t.Fatal(err)
		}

		// Cuts below the oldest retained checkpoint reference pruned
		// records; everything at or above it must reproduce recovery.
		var minCut uint64
		if len(ckLSNs) == 1 {
			minCut = ckLSNs[0]
		} else if len(ckLSNs) >= 2 {
			minCut = ckLSNs[len(ckLSNs)-2]
		}
		cuts := []uint64{minCut, last}
		if len(ckLSNs) > 0 {
			cuts = append(cuts, ckLSNs[len(ckLSNs)-1])
		}
		for k := 0; k < 4; k++ {
			cuts = append(cuts, minCut+uint64(rng.Int63n(int64(last-minCut+1))))
		}
		for _, cut := range cuts {
			cutDB := store.NewDB(schema)
			cutCons := map[string]access.Constraint{}
			for _, s := range steps {
				if s.lsn <= cut {
					applyOracle(t, cutDB, cutCons, s.rec)
				}
			}
			if err := Records(dir, cut, func(r Record) error {
				applyOracle(t, cutDB, cutCons, r)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			for rel := range schema {
				got, wantRows := sortedRows(t, cutDB, rel), sortedRows(t, want.DB, rel)
				if !reflect.DeepEqual(got, wantRows) {
					t.Fatalf("iter %d cut %d: relation %s diverged:\n got %v\nwant %v", iter, cut, rel, got, wantRows)
				}
			}
			wantKeys := make([]string, 0, len(want.Constraints))
			for _, c := range want.Constraints {
				wantKeys = append(wantKeys, c.Key())
			}
			if got := sortedConKeys(cutCons); !reflect.DeepEqual(got, wantKeys) {
				t.Fatalf("iter %d cut %d: constraints diverged:\n got %v\nwant %v", iter, cut, got, wantKeys)
			}
		}
	}
}

// --- Tail ---

func TestTailDeliversBacklogAndLiveAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 50; i++ {
		mustAppend(t, l, tupleRec("r", false, iv(i), iv(i)))
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got := make(chan Record, 256)
	idles := make(chan struct{}, 256)
	done := make(chan error, 1)
	go func() {
		done <- l.Tail(ctx, 10, time.Hour, func(r Record) error {
			got <- r
			return nil
		}, func() error {
			select {
			case idles <- struct{}{}:
			default:
			}
			return nil
		})
	}()
	next := uint64(11)
	deadline := time.After(10 * time.Second)
	for next <= 50 {
		select {
		case r := <-got:
			if r.LSN != next {
				t.Fatalf("backlog: got LSN %d, want %d", r.LSN, next)
			}
			next++
		case <-deadline:
			t.Fatalf("timed out at LSN %d", next)
		}
	}
	// Must go idle (flush point) once the backlog is drained.
	select {
	case <-idles:
	case <-deadline:
		t.Fatal("no idle callback after draining backlog")
	}
	// Live appends wake the tail without polling.
	for i := 50; i < 80; i++ {
		mustAppend(t, l, tupleRec("r", false, iv(i), iv(i)))
	}
	for next <= 80 {
		select {
		case r := <-got:
			if r.LSN != next {
				t.Fatalf("live: got LSN %d, want %d", r.LSN, next)
			}
			next++
		case <-deadline:
			t.Fatalf("timed out at live LSN %d", next)
		}
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Tail returned %v, want context.Canceled", err)
	}
}

func TestTailHeartbeatWhenIdle(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	mustAppend(t, l, tupleRec("r", false, iv(1), iv(1)))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got := make(chan Record, 16)
	go func() {
		_ = l.Tail(ctx, 0, 10*time.Millisecond, func(r Record) error {
			got <- r
			return nil
		}, nil)
	}()
	deadline := time.After(10 * time.Second)
	select {
	case r := <-got:
		if r.LSN != 1 || r.Kind != KindTuple {
			t.Fatalf("got %+v, want the backlog record", r)
		}
	case <-deadline:
		t.Fatal("no backlog record")
	}
	for {
		select {
		case r := <-got:
			if r.Kind == KindHeartbeat {
				if r.LSN != 1 {
					t.Fatalf("heartbeat carries LSN %d, want last LSN 1", r.LSN)
				}
				return
			}
			t.Fatalf("unexpected record %+v", r)
		case <-deadline:
			t.Fatal("no heartbeat on idle stream")
		}
	}
}

func TestTailGapAfterPrune(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	db := store.NewDB(testSchema())
	var last uint64
	for i := 0; i < 100; i++ {
		if _, err := db.Insert("r", value.Tuple{iv(i), iv(i)}); err != nil {
			t.Fatal(err)
		}
		last = mustAppend(t, l, tupleRec("r", false, iv(i), iv(i)))
		if i == 60 || i == 90 {
			if err := l.WriteCheckpoint(last, db.Save); err != nil {
				t.Fatal(err)
			}
		}
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if segs[0].start <= 1 {
		t.Fatal("prune did not remove the first segment; test setup is wrong")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err = l.Tail(ctx, 0, time.Hour, func(Record) error { return nil }, nil)
	if !errors.Is(err, ErrGap) {
		t.Fatalf("Tail from 0 over a pruned log returned %v, want ErrGap", err)
	}
}

// --- checkpoint fetch/install ---

func TestLatestCheckpointAndInstall(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	db := store.NewDB(testSchema())
	for i := 1; i <= 5; i++ {
		if _, err := db.Insert("r", value.Tuple{iv(i), iv(i)}); err != nil {
			t.Fatal(err)
		}
		mustAppend(t, l, tupleRec("r", false, iv(i), iv(i)))
	}
	if err := l.WriteCheckpoint(5, db.Save); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path, lsn, ok, err := LatestCheckpoint(dir)
	if err != nil || !ok {
		t.Fatalf("LatestCheckpoint: ok=%v err=%v", ok, err)
	}
	if lsn != 5 {
		t.Fatalf("LatestCheckpoint LSN %d, want 5", lsn)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	dst := t.TempDir()
	gotLSN, err := InstallCheckpoint(dst, f)
	if err != nil {
		t.Fatal(err)
	}
	if gotLSN != 5 {
		t.Fatalf("InstallCheckpoint LSN %d, want 5", gotLSN)
	}
	rec, err := RecoverDB(dst, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Found || rec.LastLSN != 5 {
		t.Fatalf("recovery from installed checkpoint: found=%v last=%d", rec.Found, rec.LastLSN)
	}
	if got, want := sortedRows(t, rec.DB, "r"), sortedRows(t, db, "r"); !reflect.DeepEqual(got, want) {
		t.Fatalf("installed state diverged:\n got %v\nwant %v", got, want)
	}
	if _, err := InstallCheckpoint(t.TempDir(), bytes.NewReader([]byte("garbage stream"))); err == nil {
		t.Fatal("InstallCheckpoint accepted garbage")
	}
}

func TestBytesSince(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var last uint64
	for i := 0; i < 100; i++ {
		last = mustAppend(t, l, tupleRec("r", false, iv(i), iv(i)))
	}
	total := l.Stats().SegmentBytes
	if got := l.BytesSince(0); got != total {
		t.Fatalf("BytesSince(0) = %d, want all %d bytes", got, total)
	}
	if got := l.BytesSince(last); got != 0 {
		t.Fatalf("BytesSince(last) = %d, want 0", got)
	}
	mid := l.BytesSince(last / 2)
	if mid <= 0 || mid > total {
		t.Fatalf("BytesSince(mid) = %d, outside (0, %d]", mid, total)
	}
}

package rewrite

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/ra"
)

// This file implements the union interaction of Example 3 (Section 2): the
// presence of ∪ lets SPC queries be converted to SPCU under A. If a max SPC
// sub-query contains k occurrences of a relation S that agree on the X side
// of a constraint S(X → Y, N) with k > N, then in every instance satisfying
// A at least two of those occurrences have equal Y projections
// (pigeonhole), so the query is A-equivalent to the union, over occurrence
// pairs, of the query extended with Y_i = Y_j. Combined with duplicate-
// occurrence elimination this reproduces the Q¹₄ ⇒ Q¹′₄ ∪ Q¹″₄ rewriting of
// the paper.

// PigeonholeUnion applies the rule to one SPC query. It returns the
// rewritten query and true when the rule fired; the result is a union of
// k·(k−1)/2 de-duplicated SPC branches, A-equivalent to the input on all
// instances satisfying A.
func PigeonholeUnion(q ra.Query, s ra.Schema, A *access.Schema) (ra.Query, bool, error) {
	if !ra.IsSPC(q) {
		return q, false, nil
	}
	spc, err := flattenSingle(q, s)
	if err != nil {
		return nil, false, err
	}
	classes, err := classesFor(spc, s)
	if err != nil {
		return nil, false, err
	}

	// Find a constraint and a group of same-base occurrences agreeing on
	// its X classes, with group size exceeding N.
	for _, c := range A.Constraints {
		if len(c.Y) == 0 {
			continue
		}
		groups := map[string][]*ra.Relation{}
		for _, rel := range spc.Rels {
			if rel.Base != c.Rel {
				continue
			}
			key := ""
			for _, x := range c.X {
				key += classes.Rep(ra.A(rel.Name, x)).String() + "|"
			}
			groups[key] = append(groups[key], rel)
		}
		for _, group := range groups {
			if len(group) <= c.N {
				continue
			}
			// Pigeonhole applies: at least two of the occurrences share
			// their Y projection. Only pairs not already unified on Y add
			// information.
			var branches []ra.Query
			informative := false
			for i := 0; i < len(group); i++ {
				for j := i + 1; j < len(group); j++ {
					if !sameOnY(classes, group[i], group[j], c) {
						informative = true
					}
					branch, err := equateYs(spc, group[i], group[j], c, s)
					if err != nil {
						return nil, false, err
					}
					branches = append(branches, branch)
				}
			}
			// If every pair is already unified on Y the rewrite is a
			// no-op; try the next group.
			if !informative || len(branches) == 0 {
				continue
			}
			out := branches[0]
			for _, b := range branches[1:] {
				out = ra.U(out, b)
			}
			return out, true, nil
		}
	}
	return q, false, nil
}

// sameOnY reports whether two occurrences are already unified on every Y
// attribute of the constraint.
func sameOnY(classes *ra.Classes, a, b *ra.Relation, c access.Constraint) bool {
	for _, y := range c.Y {
		if !classes.Same(ra.A(a.Name, y), ra.A(b.Name, y)) {
			return false
		}
	}
	return true
}

// equateYs clones the SPC query, adds Y_i = Y_j equalities between the two
// occurrences, and eliminates the duplicate occurrence when the pair is now
// equal on every attribute.
func equateYs(spc *ra.SPC, a, b *ra.Relation, c access.Constraint, s ra.Schema) (ra.Query, error) {
	preds := append([]ra.Pred{}, spc.Preds...)
	for _, y := range c.Y {
		preds = append(preds, ra.Eq(ra.A(a.Name, y), ra.A(b.Name, y)))
	}
	rels := make([]ra.Query, 0, len(spc.Rels))
	for _, rel := range spc.Rels {
		rels = append(rels, ra.R(rel.Base, rel.Name))
	}
	q := ra.Proj(ra.Sel(ra.Prod(rels...), preds...), spc.Out...)
	return DedupOccurrences(q, s)
}

// DedupOccurrences removes relation occurrences that are provably the same
// tuple as another occurrence of the same base relation: when two
// occurrences are unified on every attribute, set semantics make one of
// them redundant. Predicates and projections referencing the removed
// occurrence are rewritten onto the kept one. The input must be a single
// SPC query; the result is equivalent on all instances.
func DedupOccurrences(q ra.Query, s ra.Schema) (ra.Query, error) {
	if !ra.IsSPC(q) {
		return q, nil
	}
	for {
		spc, err := flattenSingle(q, s)
		if err != nil {
			return nil, err
		}
		classes, err := classesFor(spc, s)
		if err != nil {
			return nil, err
		}
		victim, keeper := "", ""
	search:
		for i := 0; i < len(spc.Rels); i++ {
			for j := i + 1; j < len(spc.Rels); j++ {
				a, b := spc.Rels[i], spc.Rels[j]
				if a.Base != b.Base {
					continue
				}
				attrs, err := s.Attrs(a.Base)
				if err != nil {
					return nil, err
				}
				same := true
				for _, at := range attrs {
					if !classes.Same(ra.A(a.Name, at), ra.A(b.Name, at)) {
						same = false
						break
					}
				}
				if same {
					keeper, victim = a.Name, b.Name
					break search
				}
			}
		}
		if victim == "" {
			return q, nil
		}
		q, err = removeOccurrence(spc, keeper, victim)
		if err != nil {
			return nil, err
		}
	}
}

// removeOccurrence rebuilds the SPC query without the victim occurrence,
// mapping its attribute references to the keeper.
func removeOccurrence(spc *ra.SPC, keeper, victim string) (ra.Query, error) {
	subst := func(a ra.Attr) ra.Attr {
		if a.Rel == victim {
			return ra.Attr{Rel: keeper, Name: a.Name}
		}
		return a
	}
	var rels []ra.Query
	for _, rel := range spc.Rels {
		if rel.Name == victim {
			continue
		}
		rels = append(rels, ra.R(rel.Base, rel.Name))
	}
	if len(rels) == 0 {
		return nil, fmt.Errorf("rewrite: cannot remove the only occurrence")
	}
	var preds []ra.Pred
	for _, p := range spc.Preds {
		switch t := p.(type) {
		case ra.EqAttr:
			l, r := subst(t.L), subst(t.R)
			if l == r {
				continue // trivial after substitution
			}
			preds = append(preds, ra.EqAttr{L: l, R: r})
		case ra.EqConst:
			preds = append(preds, ra.EqConst{A: subst(t.A), C: t.C})
		default:
			preds = append(preds, p)
		}
	}
	out := make([]ra.Attr, len(spc.Out))
	for i, a := range spc.Out {
		out[i] = subst(a)
	}
	return ra.Proj(ra.Sel(ra.Prod(rels...), preds...), out...), nil
}

// classesFor builds the equality closure over all attributes of the
// sub-query's occurrences.
func classesFor(spc *ra.SPC, s ra.Schema) (*ra.Classes, error) {
	var all []ra.Attr
	for _, rel := range spc.Rels {
		names, err := s.Attrs(rel.Base)
		if err != nil {
			return nil, err
		}
		for _, n := range names {
			all = append(all, ra.A(rel.Name, n))
		}
	}
	return ra.NewClasses(all, spc.Preds), nil
}

// pigeonholeAll applies PigeonholeUnion to every max SPC sub-query of q,
// bottom-up, returning the rewritten query and whether anything fired.
func pigeonholeAll(q ra.Query, s ra.Schema, A *access.Schema) (ra.Query, bool, error) {
	if ra.IsSPC(q) {
		return PigeonholeUnion(q, s, A)
	}
	switch t := q.(type) {
	case *ra.Union:
		l, lf, err := pigeonholeAll(t.L, s, A)
		if err != nil {
			return nil, false, err
		}
		r, rf, err := pigeonholeAll(t.R, s, A)
		if err != nil {
			return nil, false, err
		}
		return ra.U(l, r), lf || rf, nil
	case *ra.Diff:
		l, lf, err := pigeonholeAll(t.L, s, A)
		if err != nil {
			return nil, false, err
		}
		r, rf, err := pigeonholeAll(t.R, s, A)
		if err != nil {
			return nil, false, err
		}
		return ra.D(l, r), lf || rf, nil
	case *ra.Select:
		in, f, err := pigeonholeAll(t.In, s, A)
		if err != nil {
			return nil, false, err
		}
		return &ra.Select{In: in, Preds: t.Preds}, f, nil
	case *ra.Project:
		in, f, err := pigeonholeAll(t.In, s, A)
		if err != nil {
			return nil, false, err
		}
		return &ra.Project{In: in, Attrs: t.Attrs}, f, nil
	default:
		return q, false, nil
	}
}

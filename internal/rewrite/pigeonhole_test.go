package rewrite

import (
	"testing"

	"repro/internal/access"
	"repro/internal/exec"
	"repro/internal/ra"
	"repro/internal/store"
	"repro/internal/value"
)

// example3 builds the Example 3 setting: R(A,B,E), S(F,G,H) with
// A1 = {R(AB→E,N), S(F→GH,2), S(GH→GH,1)} and the SPC sub-query
// Q¹₄ = π_x(R(1,x,y) ⋈ S(w,x,y) ⋈ S(w,1,x) ⋈ S(w,x,x)).
func example3() (ra.Schema, *access.Schema, ra.Query) {
	s := ra.Schema{
		"r": {"a", "b", "e"},
		"s": {"f", "g", "h"},
	}
	A := access.NewSchema(
		access.Constraint{Rel: "r", X: []string{"a", "b"}, Y: []string{"e"}, N: 10},
		access.Constraint{Rel: "s", X: []string{"f"}, Y: []string{"g", "h"}, N: 2},
		access.Constraint{Rel: "s", X: []string{"g", "h"}, Y: []string{"g", "h"}, N: 1},
	)
	one := value.NewInt(1)
	// Variables: x, y, w. R(1, x, y); S1(w, x, y); S2(w, 1, x); S3(w, x, x).
	q := ra.Proj(
		ra.Sel(
			ra.Prod(ra.R("r", "r1"), ra.R("s", "s1"), ra.R("s", "s2"), ra.R("s", "s3")),
			ra.EqC(ra.A("r1", "a"), one),
			// x: r1.b = s1.g = s2.h = s3.g = s3.h
			ra.Eq(ra.A("r1", "b"), ra.A("s1", "g")),
			ra.Eq(ra.A("s1", "g"), ra.A("s2", "h")),
			ra.Eq(ra.A("s1", "g"), ra.A("s3", "g")),
			ra.Eq(ra.A("s3", "g"), ra.A("s3", "h")),
			// y: r1.e = s1.h
			ra.Eq(ra.A("r1", "e"), ra.A("s1", "h")),
			// w: s1.f = s2.f = s3.f
			ra.Eq(ra.A("s1", "f"), ra.A("s2", "f")),
			ra.Eq(ra.A("s2", "f"), ra.A("s3", "f")),
			// s2.g = 1
			ra.EqC(ra.A("s2", "g"), one),
		),
		ra.A("r1", "b"),
	)
	return s, A, q
}

// TestExample3PigeonholeShape: three S occurrences share w under
// S(F→GH,2), so the SPC query becomes a union of three branches, each with
// one duplicate occurrence eliminated.
func TestExample3PigeonholeShape(t *testing.T) {
	s, A, q := example3()
	out, fired, err := PigeonholeUnion(q, s, A)
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("pigeonhole did not fire on Example 3")
	}
	// 3 choose 2 = 3 branches.
	branches := unionLeaves(out)
	if len(branches) != 3 {
		t.Fatalf("got %d branches, want 3", len(branches))
	}
	// Equating (g,h) of two occurrences that already share f makes them
	// the same tuple, so every branch drops at least one S occurrence.
	// Where the instantiation pins x = 1 (pairs involving s2), y collapses
	// too and all three S occurrences become one — the paper's Q¹″₄ being
	// subsumed by Q²₄ is this same collapse.
	for i, b := range branches {
		rels := ra.Relations(b)
		if len(rels) > 3 {
			t.Errorf("branch %d has %d occurrences, duplicate not eliminated: %s",
				i, len(rels), b)
		}
		if len(rels) < 2 {
			t.Errorf("branch %d over-collapsed to %d occurrences: %s", i, len(rels), b)
		}
	}
	// The (s1,s3) branch keeps s2 distinct: expect at least one branch
	// with 3 occurrences and at least one fully collapsed with 2.
	counts := map[int]bool{}
	for _, b := range branches {
		counts[len(ra.Relations(b))] = true
	}
	if !counts[2] || !counts[3] {
		t.Errorf("expected branches with 2 and 3 occurrences, got %v", counts)
	}
}

// TestPigeonholePreservesSemantics loads instances satisfying A1 and checks
// the rewritten union returns exactly the original answer.
func TestPigeonholePreservesSemantics(t *testing.T) {
	s, A, q := example3()
	out, fired, err := PigeonholeUnion(q, s, A)
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("rule did not fire")
	}
	db := store.NewDB(s)
	iv := func(i int) value.Value { return value.NewInt(int64(i)) }
	// S: per f value at most 2 distinct (g,h). Construct data exercising
	// both matching and non-matching w groups, including x = 1 cases.
	sRows := []value.Tuple{
		{iv(10), iv(1), iv(5)}, // w=10: (1,5), (5,5) → x=5? s2 needs (1,x) → (1,5): x=5; s3 needs (x,x) = (5,5) ✓
		{iv(10), iv(5), iv(5)},
		{iv(20), iv(1), iv(1)}, // w=20: (1,1) only → x=1 branch (s1=s2=s3 all (1,1))
		{iv(30), iv(2), iv(3)}, // w=30: no match
		{iv(30), iv(3), iv(3)},
	}
	for _, r := range sRows {
		if _, err := db.Insert("s", r); err != nil {
			t.Fatal(err)
		}
	}
	rRows := []value.Tuple{
		{iv(1), iv(5), iv(5)}, // (1, x=5, y=5): S1(w,5,5) must exist with right w
		{iv(1), iv(1), iv(1)}, // (1, x=1, y=1)
		{iv(1), iv(3), iv(3)}, // x=3: no (1,3) in S → no answer
		{iv(2), iv(9), iv(9)}, // a≠1
	}
	for _, r := range rRows {
		if _, err := db.Insert("r", r); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.SatisfiesAll(A); err != nil {
		t.Fatalf("test data violates A1: %v", err)
	}
	qn, err := ra.Normalize(q, s)
	if err != nil {
		t.Fatal(err)
	}
	on, err := ra.Normalize(out, s)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := exec.RunBaseline(qn, s, db)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := exec.RunBaseline(on, s, db)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("pigeonhole changed semantics:\noriginal:\n%s\nrewritten:\n%s", want, got)
	}
	if want.Len() == 0 {
		t.Fatal("test data produced empty answer — weak test")
	}
}

// TestPigeonholeNotApplicable: within the bound, the rule must not fire.
func TestPigeonholeNotApplicable(t *testing.T) {
	s := ra.Schema{"s": {"f", "g"}}
	A := access.NewSchema(access.Constraint{Rel: "s", X: []string{"f"}, Y: []string{"g"}, N: 2})
	// Only two occurrences share f; N = 2 is not exceeded.
	q := ra.Proj(
		ra.Sel(ra.Prod(ra.R("s", "s1"), ra.R("s", "s2")),
			ra.Eq(ra.A("s1", "f"), ra.A("s2", "f"))),
		ra.A("s1", "g"),
	)
	_, fired, err := PigeonholeUnion(q, s, A)
	if err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("pigeonhole fired although k ≤ N")
	}
}

// TestDedupOccurrences: two occurrences unified on all attributes collapse.
func TestDedupOccurrences(t *testing.T) {
	s := ra.Schema{"s": {"f", "g"}}
	q := ra.Proj(
		ra.Sel(ra.Prod(ra.R("s", "s1"), ra.R("s", "s2")),
			ra.Eq(ra.A("s1", "f"), ra.A("s2", "f")),
			ra.Eq(ra.A("s1", "g"), ra.A("s2", "g"))),
		ra.A("s2", "g"),
	)
	out, err := DedupOccurrences(q, s)
	if err != nil {
		t.Fatal(err)
	}
	rels := ra.Relations(out)
	if len(rels) != 1 {
		t.Fatalf("dedup kept %d occurrences: %s", len(rels), out)
	}
	// Semantics: same answer on data.
	db := store.NewDB(s)
	iv := func(i int) value.Value { return value.NewInt(int64(i)) }
	for i := 0; i < 5; i++ {
		if _, err := db.Insert("s", value.Tuple{iv(i % 2), iv(i)}); err != nil {
			t.Fatal(err)
		}
	}
	qn, _ := ra.Normalize(q, s)
	on, _ := ra.Normalize(out, s)
	a, _, err := exec.RunBaseline(qn, s, db)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := exec.RunBaseline(on, s, db)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("dedup changed semantics")
	}
}

// TestPigeonholeEnablesCoverage: a case where instantiation turns an
// uncovered query covered — the indexing condition fails on three
// occurrences but holds once a pair merges and the value becomes constant.
func TestPigeonholeEnablesCoverage(t *testing.T) {
	s, A, q := example3()
	// Under A1 the Example 3 query stays uncovered even after pigeonhole
	// (w remains unfetchable), exactly as in the paper, where Q¹′₄ is
	// boundedly evaluable but shown via a plan, not coverage. Adding an
	// index from (g,h) to f makes the instantiated branches covered while
	// the original is not (s1's (g,h) = (x,y) is not constant-rooted until
	// the pigeonhole pins y).
	A2 := access.NewSchema(append(append([]access.Constraint{}, A.Constraints...),
		access.Constraint{Rel: "s", X: []string{"g", "h"}, Y: []string{"f"}, N: 4},
		access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b", "e"}, N: 50},
		access.Constraint{Rel: "r", X: []string{"a", "b", "e"}, Y: []string{"a", "b", "e"}, N: 1},
	)...)
	res, err := ToCovered(q, s, A2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Skipf("instantiated query still uncovered under extended schema: %v", res.Applied)
	}
	found := false
	for _, rule := range res.Applied {
		if rule == "pigeonhole-union" {
			found = true
		}
	}
	if !found {
		t.Logf("covered without pigeonhole (rules: %v)", res.Applied)
	}
}

func unionLeaves(q ra.Query) []ra.Query {
	if u, ok := q.(*ra.Union); ok {
		return append(unionLeaves(u.L), unionLeaves(u.R)...)
	}
	return []ra.Query{q}
}

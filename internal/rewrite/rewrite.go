// Package rewrite implements query rewriting toward covered form
// (Section 1, point (3)): equivalence-preserving transformations that turn
// boundedly evaluable but uncovered RA queries into A-equivalent covered
// ones. The flagship rule is the difference guard of Example 1,
// Q1 − Q2 ⇒ Q1 − (Q1 ⋈ Q2), which lets the set-difference branch reuse the
// bounded fetches of the positive branch; selection pushdown moves
// predicates into max SPC sub-queries where the coverage analysis can use
// them.
package rewrite

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/cover"
	"repro/internal/ra"
)

// Result reports the outcome of a rewrite attempt.
type Result struct {
	// Query is the (normalized) rewritten query; equal to the input when no
	// rule applied.
	Query ra.Query
	// Covered reports whether the final query is covered by A.
	Covered bool
	// Applied lists the rules that fired, in order.
	Applied []string
}

// ToCovered tries to rewrite q into an A-equivalent covered query. The
// input is normalized first; the result is always normalized and
// equivalence-preserving on instances satisfying A.
func ToCovered(q ra.Query, s ra.Schema, A *access.Schema) (*Result, error) {
	norm, err := ra.Normalize(q, s)
	if err != nil {
		return nil, err
	}
	res := &Result{Query: norm}

	check := func() (bool, error) {
		c, err := cover.Check(res.Query, s, A)
		if err != nil {
			return false, err
		}
		res.Covered = c.Covered
		return c.Covered, nil
	}
	if ok, err := check(); err != nil || ok {
		return res, err
	}

	// Rule 1: selection pushdown through set operators.
	pushed := PushSelections(res.Query, s)
	if pushed != nil {
		normPushed, err := ra.Normalize(pushed, s)
		if err == nil {
			res.Query = normPushed
			res.Applied = append(res.Applied, "push-selections")
			if ok, err := check(); err != nil || ok {
				return res, err
			}
		}
	}

	// Rule 2: difference guarding, bottom-up.
	guarded, fired, err := guardDiffs(res.Query, s, A)
	if err != nil {
		return nil, err
	}
	if fired {
		normGuarded, err := ra.Normalize(guarded, s)
		if err != nil {
			return nil, err
		}
		res.Query = normGuarded
		res.Applied = append(res.Applied, "guard-difference")
	}
	if ok, err := check(); err != nil || ok {
		return res, err
	}

	// Rule 3: pigeonhole instantiation (Example 3) — converts SPC
	// sub-queries to SPCU under small-N constraints. Since it enlarges the
	// query, the result is kept only when it achieves coverage.
	ph, fired, err := pigeonholeAll(res.Query, s, A)
	if err != nil {
		return nil, err
	}
	if fired {
		normPH, err := ra.Normalize(ph, s)
		if err == nil {
			c, err := cover.Check(normPH, s, A)
			if err != nil {
				return nil, err
			}
			if c.Covered {
				res.Query = normPH
				res.Covered = true
				res.Applied = append(res.Applied, "pigeonhole-union")
				return res, nil
			}
		}
	}
	_, err = check()
	return res, err
}

// PushSelections pushes selections through unions and differences:
// σ_p(L ∪ R) = σ_p(L) ∪ σ_p'(R) (p' maps attributes positionally) and
// σ_p(L − R) = σ_p(L) − R. Returns nil when nothing changed.
func PushSelections(q ra.Query, s ra.Schema) ra.Query {
	out, changed := pushSel(q, s)
	if !changed {
		return nil
	}
	return out
}

func pushSel(q ra.Query, s ra.Schema) (ra.Query, bool) {
	switch t := q.(type) {
	case *ra.Select:
		in, chIn := pushSel(t.In, s)
		switch inner := in.(type) {
		case *ra.Union:
			rp, err := remapPreds(t.Preds, inner.L, inner.R, s)
			if err == nil {
				l, _ := pushSel(ra.Sel(inner.L, t.Preds...), s)
				r, _ := pushSel(ra.Sel(inner.R, rp...), s)
				return ra.U(l, r), true
			}
		case *ra.Diff:
			l, _ := pushSel(ra.Sel(inner.L, t.Preds...), s)
			return ra.D(l, inner.R), true
		case *ra.Select:
			merged := append(append([]ra.Pred{}, t.Preds...), inner.Preds...)
			return &ra.Select{In: inner.In, Preds: merged}, true
		}
		if chIn {
			return &ra.Select{In: in, Preds: t.Preds}, true
		}
		return q, false
	case *ra.Project:
		in, ch := pushSel(t.In, s)
		if ch {
			return &ra.Project{In: in, Attrs: t.Attrs}, true
		}
		return q, false
	case *ra.Product:
		l, cl := pushSel(t.L, s)
		r, cr := pushSel(t.R, s)
		if cl || cr {
			return &ra.Product{L: l, R: r}, true
		}
		return q, false
	case *ra.Union:
		l, cl := pushSel(t.L, s)
		r, cr := pushSel(t.R, s)
		if cl || cr {
			return &ra.Union{L: l, R: r}, true
		}
		return q, false
	case *ra.Diff:
		l, cl := pushSel(t.L, s)
		r, cr := pushSel(t.R, s)
		if cl || cr {
			return &ra.Diff{L: l, R: r}, true
		}
		return q, false
	default:
		return q, false
	}
}

// remapPreds rewrites predicates over L's output attributes into predicates
// over R's output attributes at the same positions.
func remapPreds(preds []ra.Pred, l, r ra.Query, s ra.Schema) ([]ra.Pred, error) {
	la, err := ra.OutAttrs(l, s)
	if err != nil {
		return nil, err
	}
	rAttrs, err := ra.OutAttrs(r, s)
	if err != nil {
		return nil, err
	}
	if len(la) != len(rAttrs) {
		return nil, fmt.Errorf("rewrite: arity mismatch")
	}
	pos := map[ra.Attr]int{}
	for i, a := range la {
		if _, dup := pos[a]; !dup {
			pos[a] = i
		}
	}
	mapAttr := func(a ra.Attr) (ra.Attr, error) {
		p, ok := pos[a]
		if !ok {
			return a, fmt.Errorf("rewrite: attribute %s not in union output", a)
		}
		return rAttrs[p], nil
	}
	out := make([]ra.Pred, len(preds))
	for i, p := range preds {
		switch t := p.(type) {
		case ra.EqAttr:
			l2, err := mapAttr(t.L)
			if err != nil {
				return nil, err
			}
			r2, err := mapAttr(t.R)
			if err != nil {
				return nil, err
			}
			out[i] = ra.EqAttr{L: l2, R: r2}
		case ra.EqConst:
			a2, err := mapAttr(t.A)
			if err != nil {
				return nil, err
			}
			out[i] = ra.EqConst{A: a2, C: t.C}
		default:
			out[i] = p
		}
	}
	return out, nil
}

// guardDiffs walks the query bottom-up and, at each difference L − R whose
// right side is not covered, replaces R by the guard L ⋈ R (a single merged
// SPC sub-query), which is A-equivalent: tuples of R outside L never affect
// L − R. The guard applies when both sides decompose into SPC queries
// (unions of SPCs are guarded branch-wise).
func guardDiffs(q ra.Query, s ra.Schema, A *access.Schema) (ra.Query, bool, error) {
	switch t := q.(type) {
	case *ra.Diff:
		l, lf, err := guardDiffs(t.L, s, A)
		if err != nil {
			return nil, false, err
		}
		r, rf, err := guardDiffs(t.R, s, A)
		if err != nil {
			return nil, false, err
		}
		rCovered, err := subCovered(r, s, A)
		if err != nil {
			return nil, false, err
		}
		if rCovered {
			return &ra.Diff{L: l, R: r}, lf || rf, nil
		}
		guard, err := mergeGuard(l, r, s)
		if err != nil {
			// Rule not applicable; keep the children rewrites.
			return &ra.Diff{L: l, R: r}, lf || rf, nil //nolint:nilerr
		}
		return &ra.Diff{L: l, R: guard}, true, nil
	case *ra.Union:
		l, lf, err := guardDiffs(t.L, s, A)
		if err != nil {
			return nil, false, err
		}
		r, rf, err := guardDiffs(t.R, s, A)
		if err != nil {
			return nil, false, err
		}
		return &ra.Union{L: l, R: r}, lf || rf, nil
	case *ra.Select:
		in, f, err := guardDiffs(t.In, s, A)
		if err != nil {
			return nil, false, err
		}
		return &ra.Select{In: in, Preds: t.Preds}, f, nil
	case *ra.Project:
		in, f, err := guardDiffs(t.In, s, A)
		if err != nil {
			return nil, false, err
		}
		return &ra.Project{In: in, Attrs: t.Attrs}, f, nil
	default:
		return q, false, nil
	}
}

// subCovered checks whether every max SPC sub-query of q is covered.
func subCovered(q ra.Query, s ra.Schema, A *access.Schema) (bool, error) {
	res, err := cover.Check(q, s, A)
	if err != nil {
		return false, err
	}
	return res.Covered, nil
}

// mergeGuard builds L ⋈ R as a single SPC query (or a union of such when L
// is a union of SPCs): π_{out(L)} σ_{C_L ∧ C_R ∧ out(L)=out(R)}(rels_L ×
// rels_R), using fresh clones of both sides so the caller can re-normalize.
func mergeGuard(l, r ra.Query, s ra.Schema) (ra.Query, error) {
	if u, ok := l.(*ra.Union); ok {
		gl, err := mergeGuard(u.L, r, s)
		if err != nil {
			return nil, err
		}
		gr, err := mergeGuard(u.R, r, s)
		if err != nil {
			return nil, err
		}
		return ra.U(gl, gr), nil
	}
	if d, ok := l.(*ra.Diff); ok {
		// Guard with the positive core: since (A − B) ⊆ A, we have
		// (A−B) − (A ⋈ R) = (A−B) − R, so guarding against A suffices.
		return mergeGuard(d.L, r, s)
	}
	if !ra.IsSPC(l) || !ra.IsSPC(r) {
		return nil, fmt.Errorf("rewrite: difference guard needs SPC operands")
	}
	lc, rc := ra.Clone(l), ra.Clone(r)
	lspc, err := flattenSingle(lc, s)
	if err != nil {
		return nil, err
	}
	rspc, err := flattenSingle(rc, s)
	if err != nil {
		return nil, err
	}
	if len(lspc.Out) != len(rspc.Out) {
		return nil, fmt.Errorf("rewrite: arity mismatch in difference")
	}
	preds := append([]ra.Pred{}, lspc.Preds...)
	preds = append(preds, rspc.Preds...)
	for i := range lspc.Out {
		preds = append(preds, ra.Eq(lspc.Out[i], rspc.Out[i]))
	}
	rels := make([]ra.Query, 0, len(lspc.Rels)+len(rspc.Rels))
	for _, rel := range lspc.Rels {
		rels = append(rels, rel)
	}
	for _, rel := range rspc.Rels {
		rels = append(rels, rel)
	}
	return ra.Proj(ra.Sel(ra.Prod(rels...), preds...), lspc.Out...), nil
}

func flattenSingle(q ra.Query, s ra.Schema) (*ra.SPC, error) {
	subs, err := ra.MaxSPC(q, s)
	if err != nil {
		return nil, err
	}
	if len(subs) != 1 {
		return nil, fmt.Errorf("rewrite: expected a single SPC sub-query")
	}
	return subs[0], nil
}

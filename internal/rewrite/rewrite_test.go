package rewrite

import (
	"testing"

	"repro/internal/cover"
	"repro/internal/exec"
	"repro/internal/ra"
	"repro/internal/value"
	"repro/internal/workload"
)

// TestGuardDifferenceExample1 is the headline rewrite: Q0 = Q1 − Q2 is not
// covered under A0, but ToCovered finds the A0-equivalent Q1 − (Q1 ⋈ Q2).
func TestGuardDifferenceExample1(t *testing.T) {
	fb, db, err := workload.GenFacebook(workload.DefaultFacebookConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := ToCovered(fb.Q0(), fb.Schema, fb.Access)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Fatalf("Q0 not rewritten to covered form (rules applied: %v)", res.Applied)
	}
	found := false
	for _, r := range res.Applied {
		if r == "guard-difference" {
			found = true
		}
	}
	if !found {
		t.Errorf("difference guard did not fire: %v", res.Applied)
	}
	// Semantic equivalence on data satisfying A0.
	orig, _ := ra.Normalize(fb.Q0(), fb.Schema)
	a, _, err := exec.RunBaseline(orig, fb.Schema, db)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := exec.RunBaseline(res.Query, fb.Schema, db)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("rewritten query is not equivalent to the original")
	}
}

func TestCoveredQueryPassesThrough(t *testing.T) {
	fb := &workload.Facebook{
		Schema: workload.FacebookSchema(),
		Access: workload.FacebookAccess(),
		Me:     value.NewInt(0),
	}
	res, err := ToCovered(fb.Q1(), fb.Schema, fb.Access)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered || len(res.Applied) != 0 {
		t.Errorf("already-covered query should pass through untouched: %v", res.Applied)
	}
}

func TestUncoverableStaysUncovered(t *testing.T) {
	fb := &workload.Facebook{
		Schema: workload.FacebookSchema(),
		Access: workload.FacebookAccess(),
		Me:     value.NewInt(0),
	}
	// Q2 alone has no covered equivalent reachable by our rules.
	res, err := ToCovered(fb.Q2(), fb.Schema, fb.Access)
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered {
		t.Error("Q2 cannot be covered; rewrite claims otherwise")
	}
}

func TestPushSelectionsThroughUnion(t *testing.T) {
	s := ra.Schema{"r": {"a", "b"}}
	// σ_{a=1}(π_a,b(r1) ∪ π_a,b(r2))
	mk := func(occ string) ra.Query {
		return ra.Proj(ra.R("r", occ), ra.A(occ, "a"), ra.A(occ, "b"))
	}
	q := ra.Sel(ra.U(mk("r1"), mk("r2")), ra.EqC(ra.A("r1", "a"), value.NewInt(1)))
	out := PushSelections(q, s)
	if out == nil {
		t.Fatal("pushdown did not fire")
	}
	u, ok := out.(*ra.Union)
	if !ok {
		t.Fatalf("expected union at top, got %T", out)
	}
	if _, ok := u.L.(*ra.Select); !ok {
		t.Error("selection not pushed into left branch")
	}
	if _, ok := u.R.(*ra.Select); !ok {
		t.Error("selection not pushed into right branch")
	}
	// Right branch predicate must reference r2.
	rp := u.R.(*ra.Select).Preds[0].(ra.EqConst)
	if rp.A.Rel != "r2" {
		t.Errorf("right predicate references %s", rp.A.Rel)
	}
}

func TestPushSelectionsThroughDiff(t *testing.T) {
	s := ra.Schema{"r": {"a", "b"}}
	mk := func(occ string) ra.Query {
		return ra.Proj(ra.R("r", occ), ra.A(occ, "a"))
	}
	q := ra.Sel(ra.D(mk("r1"), mk("r2")), ra.EqC(ra.A("r1", "a"), value.NewInt(1)))
	out := PushSelections(q, s)
	if out == nil {
		t.Fatal("pushdown did not fire")
	}
	d, ok := out.(*ra.Diff)
	if !ok {
		t.Fatalf("expected diff at top, got %T", out)
	}
	if _, ok := d.L.(*ra.Select); !ok {
		t.Error("selection not pushed into left branch")
	}
	// σ_p(L − R) = σ_p(L) − R: right side untouched.
	if _, ok := d.R.(*ra.Select); ok {
		t.Error("selection wrongly pushed into right branch of diff")
	}
}

// TestPushdownPreservesSemantics evaluates pushed and original forms.
func TestPushdownPreservesSemantics(t *testing.T) {
	fb, db, err := workload.GenFacebook(workload.DefaultFacebookConfig())
	if err != nil {
		t.Fatal(err)
	}
	mk := func(occ string, city string) ra.Query {
		return ra.Proj(
			ra.Sel(ra.R("cafe", occ), ra.EqC(ra.A(occ, "city"), value.NewStr(city))),
			ra.A(occ, "cid"), ra.A(occ, "city"),
		)
	}
	inner := ra.U(mk("c1", "nyc"), mk("c2", "sf"))
	q := ra.Sel(inner, ra.EqC(ra.A("c1", "city"), value.NewStr("nyc")))
	pushed := PushSelections(q, fb.Schema)
	if pushed == nil {
		t.Fatal("no pushdown")
	}
	qn, err := ra.Normalize(q, fb.Schema)
	if err != nil {
		t.Fatal(err)
	}
	pn, err := ra.Normalize(pushed, fb.Schema)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := exec.RunBaseline(qn, fb.Schema, db)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := exec.RunBaseline(pn, fb.Schema, db)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatalf("pushdown changed semantics:\n%s\nvs\n%s", a, b)
	}
}

// TestGuardedQueryIsCoveredAndEquivalentOnUnions: (Q1 ∪ Q1') − Q2 guards
// branch-wise.
func TestGuardUnionLeft(t *testing.T) {
	fb, db, err := workload.GenFacebook(workload.DefaultFacebookConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := ra.D(ra.U(fb.Q1(), fb.Q3()), fb.Q2())
	res, err := ToCovered(q, fb.Schema, fb.Access)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Fatalf("union-left difference not rewritten: %v", res.Applied)
	}
	// Equivalence.
	qn, _ := ra.Normalize(q, fb.Schema)
	a, _, err := exec.RunBaseline(qn, fb.Schema, db)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := exec.RunBaseline(res.Query, fb.Schema, db)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("guarded union query not equivalent")
	}
	// And the rewritten query must actually be covered per CovChk.
	chk, err := cover.Check(res.Query, fb.Schema, fb.Access)
	if err != nil {
		t.Fatal(err)
	}
	if !chk.Covered {
		t.Error("rewrite reports covered but CovChk disagrees")
	}
}

func TestNestedDiffGuard(t *testing.T) {
	fb, db, err := workload.GenFacebook(workload.DefaultFacebookConfig())
	if err != nil {
		t.Fatal(err)
	}
	// (Q1 − Q2) − Q2': two guards needed.
	q := ra.D(ra.D(fb.Q1(), fb.Q2()), fb.Q2())
	res, err := ToCovered(q, fb.Schema, fb.Access)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Fatalf("nested diff not covered after rewrite: %v", res.Applied)
	}
	qn, _ := ra.Normalize(q, fb.Schema)
	a, _, err := exec.RunBaseline(qn, fb.Schema, db)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := exec.RunBaseline(res.Query, fb.Schema, db)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("nested guard changed semantics")
	}
}

// Benchmarks regenerating the paper's evaluation (Section 8). Each figure
// and table has a target here; `cmd/benchfig` prints the full series, while
// these testing.B wrappers integrate with `go test -bench`.
//
//	Fig. 6        -> BenchmarkFig6_CoveredRatio
//	Fig. 5(a,e,i) -> BenchmarkFig5_VaryD_{AIRCA,TFACC,MCBM}
//	Fig. 5(b,f,j) -> BenchmarkFig5_VarySel_{AIRCA,TFACC,MCBM}
//	Fig. 5(c,g,k) -> BenchmarkFig5_VaryJoin_{AIRCA,TFACC,MCBM}
//	Fig. 5(d,h,l) -> BenchmarkFig5_VaryA_{AIRCA,TFACC,MCBM}
//	Exp-1(IV)     -> BenchmarkIndexBuild
//	Exp-2         -> BenchmarkExp2_{ChkCov,QPlan,MinA,MinADAG} (per-call latency)
//	evalQP/evalDBMS per-query -> BenchmarkEvalQP / BenchmarkEvalDBMS
package bounded_test

import (
	"io"
	"math/rand"
	"testing"

	bounded "repro"

	"repro/internal/bench"
	"repro/internal/cover"
	"repro/internal/exec"
	"repro/internal/minimize"
	"repro/internal/plan"
	"repro/internal/ra"
	"repro/internal/store"
	"repro/internal/workload"
)

// benchCfg keeps full-figure regeneration affordable under `go test -bench`.
func benchCfg() bench.Config {
	cfg := bench.DefaultConfig()
	cfg.FullScale = 0.25
	cfg.QueryPool = 40
	cfg.EvalQueries = 3
	return cfg
}

func BenchmarkFig6_CoveredRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig6(io.Discard, benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func benchVaryD(b *testing.B, d *workload.Dataset) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig5VaryD(io.Discard, d, benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5_VaryD_AIRCA(b *testing.B) { benchVaryD(b, workload.Airca()) }
func BenchmarkFig5_VaryD_TFACC(b *testing.B) { benchVaryD(b, workload.Tfacc()) }
func BenchmarkFig5_VaryD_MCBM(b *testing.B)  { benchVaryD(b, workload.Mcbm()) }

func benchVarySel(b *testing.B, d *workload.Dataset) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig5VarySel(io.Discard, d, benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5_VarySel_AIRCA(b *testing.B) { benchVarySel(b, workload.Airca()) }
func BenchmarkFig5_VarySel_TFACC(b *testing.B) { benchVarySel(b, workload.Tfacc()) }
func BenchmarkFig5_VarySel_MCBM(b *testing.B)  { benchVarySel(b, workload.Mcbm()) }

func benchVaryJoin(b *testing.B, d *workload.Dataset) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig5VaryJoin(io.Discard, d, benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5_VaryJoin_AIRCA(b *testing.B) { benchVaryJoin(b, workload.Airca()) }
func BenchmarkFig5_VaryJoin_TFACC(b *testing.B) { benchVaryJoin(b, workload.Tfacc()) }
func BenchmarkFig5_VaryJoin_MCBM(b *testing.B)  { benchVaryJoin(b, workload.Mcbm()) }

func benchVaryA(b *testing.B, d *workload.Dataset) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig5VaryA(io.Discard, d, benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5_VaryA_AIRCA(b *testing.B) { benchVaryA(b, workload.Airca()) }
func BenchmarkFig5_VaryA_TFACC(b *testing.B) { benchVaryA(b, workload.Tfacc()) }
func BenchmarkFig5_VaryA_MCBM(b *testing.B)  { benchVaryA(b, workload.Mcbm()) }

// BenchmarkIndexBuild is Exp-1(IV): time to generate data and build all
// indices I_A.
func BenchmarkIndexBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.IndexStats(io.Discard, benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Exp-2: per-call analysis latency (paper: ≤ 199 ms in all cases) ------

// exp2Fixture prepares a representative covered query on AIRCA.
func exp2Fixture(b *testing.B) (*workload.Dataset, *cover.Result) {
	b.Helper()
	d := workload.Airca()
	rng := rand.New(rand.NewSource(2016))
	params := workload.DefaultQueryParams()
	params.Sel = 6
	params.Join = 3
	params.UniDiff = 2
	for tries := 0; tries < 200; tries++ {
		q, err := d.RandomQuery(params, rng)
		if err != nil {
			b.Fatal(err)
		}
		res, err := cover.Check(q, d.Schema, d.Access)
		if err != nil {
			b.Fatal(err)
		}
		if res.Covered {
			return d, res
		}
	}
	b.Fatal("no covered query found")
	return nil, nil
}

func BenchmarkExp2_ChkCov(b *testing.B) {
	d, res := exp2Fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cover.Check(res.Query, d.Schema, d.Access); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExp2_QPlan(b *testing.B) {
	_, res := exp2Fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Build(res); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExp2_MinA(b *testing.B) {
	_, res := exp2Fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := minimize.MinA(res, minimize.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExp2_MinADAG(b *testing.B) {
	_, res := exp2Fixture(b)
	if !minimize.IsAcyclic(res) {
		b.Skip("fixture instance is cyclic")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := minimize.MinADAG(res); err != nil {
			b.Fatal(err)
		}
	}
}

// --- per-query evaluation latency on Example 1 ----------------------------

func facebookFixture(b *testing.B) (ra.Query, ra.Schema, *plan.Plan, *store.DB) {
	b.Helper()
	cfg := workload.DefaultFacebookConfig()
	cfg.Persons = 2000
	cfg.Cafes = 500
	fb, db, err := workload.GenFacebook(cfg)
	if err != nil {
		b.Fatal(err)
	}
	norm, err := ra.Normalize(fb.Q0Prime(), fb.Schema)
	if err != nil {
		b.Fatal(err)
	}
	res, err := cover.Check(norm, fb.Schema, fb.Access)
	if err != nil {
		b.Fatal(err)
	}
	p, err := plan.Build(res)
	if err != nil {
		b.Fatal(err)
	}
	return norm, fb.Schema, p, db
}

// BenchmarkEvalQP measures bounded evaluation of the Example 1 query.
func BenchmarkEvalQP(b *testing.B) {
	_, _, p, db := facebookFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := exec.Run(p, db); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalDBMS measures the conventional evaluator on the same query
// and data; the ns/op gap is the paper's headline comparison.
func BenchmarkEvalDBMS(b *testing.B) {
	q, s, _, db := facebookFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := exec.RunBaseline(q, s, db); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalQPParallel measures the concurrent plan executor on the
// same fixture (independent fetching/indexing sub-plans run in parallel).
func BenchmarkEvalQPParallel(b *testing.B) {
	_, _, p, db := facebookFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := exec.RunParallel(p, db, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablations (design choices called out in DESIGN.md) -------------------

// BenchmarkMaintenance_Incremental measures Proposition 12: per-update
// index maintenance cost, which must not depend on |D|.
func BenchmarkMaintenance_Incremental(b *testing.B) {
	cfg := workload.DefaultFacebookConfig()
	cfg.Persons = 5000
	fb, db, err := workload.GenFacebook(cfg)
	if err != nil {
		b.Fatal(err)
	}
	_ = fb
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tup := bounded.Tuple{bounded.Int(int64(i % 5000)), bounded.Int(int64(1000000 + i))}
		if _, err := db.Insert("friend", tup); err != nil {
			b.Fatal(err)
		}
		if _, err := db.Delete("friend", tup); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaintenance_Rebuild is the ablation baseline: rebuilding the
// friend index from scratch after each update instead of maintaining it.
func BenchmarkMaintenance_Rebuild(b *testing.B) {
	cfg := workload.DefaultFacebookConfig()
	cfg.Persons = 5000
	fb, db, err := workload.GenFacebook(cfg)
	if err != nil {
		b.Fatal(err)
	}
	friendCon := fb.Access.Constraints[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.BuildIndex(friendCon); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_PlanMemoization quantifies step sharing: plan length
// with memoized unit fetching plans (the default) must stay well below the
// naive per-attribute bound |XQ|·|A|.
func BenchmarkAblation_PlanMemoization(b *testing.B) {
	_, res := exp2Fixture(b)
	b.ResetTimer()
	var length int
	for i := 0; i < b.N; i++ {
		p, err := plan.Build(res)
		if err != nil {
			b.Fatal(err)
		}
		length = p.Length()
	}
	b.ReportMetric(float64(length), "plan-steps")
}

// --- serving layer --------------------------------------------------------

// BenchmarkServe replays the full concurrent serving benchmark: N client
// goroutines draw a Zipf-skewed mix of repeated workload queries against a
// database that writer goroutines mutate underneath, exercising the plan
// cache and bounded incremental index maintenance together. The reported
// extra metrics are the plan-cache hit rate and the cold-compile /
// cache-hit speedup.
func BenchmarkServe(b *testing.B) {
	cfg := bench.DefaultServeConfig()
	var last *bench.ServeResult
	for i := 0; i < b.N; i++ {
		res, err := bench.Serve(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Errors > 0 {
			b.Fatalf("%d serving errors", res.Errors)
		}
		last = res
	}
	b.ReportMetric(last.QPS, "queries/s")
	b.ReportMetric(100*last.HitRate, "hit-%")
	b.ReportMetric(last.Speedup, "cold/hot-x")
}

// BenchmarkExecuteCold and BenchmarkExecuteCached isolate the tentpole
// claim: a repeated query through the plan cache skips the whole analysis
// pipeline (CovChk, rewriting, minA, QPlan) and goes straight to evalQP.
func benchExecuteEngine(b *testing.B) (*bounded.Engine, bounded.Query) {
	cfg := workload.DefaultFacebookConfig()
	// Serving-sized population: the cache's win is the skipped analysis
	// pipeline, so the benchmark keeps execution from drowning compile.
	cfg.Persons = 300
	fb, db, err := workload.GenFacebook(cfg)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := bounded.NewEngine(fb.Schema, fb.Access, db)
	if err != nil {
		b.Fatal(err)
	}
	return eng, fb.Q1()
}

func BenchmarkExecuteCold(b *testing.B) {
	eng, q := benchExecuteEngine(b)
	opts := bounded.DefaultOptions()
	opts.Cache = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.Execute(q, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteCached(b *testing.B) {
	eng, q := benchExecuteEngine(b)
	opts := bounded.DefaultOptions()
	if _, _, err := eng.Execute(q, opts); err != nil {
		b.Fatal(err) // warm the cache
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.Execute(q, opts); err != nil {
			b.Fatal(err)
		}
	}
}
